// Package experiments orchestrates the reproduction of the paper's
// evaluation section: it runs the workload suite through the machine
// simulator, evaluates predictor schemes over the resulting traces, and
// renders each of the paper's tables (3–11) and figures (6–9). DESIGN.md
// carries the experiment index mapping each artifact to the modules
// involved.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"cohpredict/internal/core"
	"cohpredict/internal/machine"
	"cohpredict/internal/obs"
	"cohpredict/internal/report"
	"cohpredict/internal/search"
	"cohpredict/internal/trace"
	"cohpredict/internal/workload"
)

// Config parameterises a reproduction run.
type Config struct {
	Scale   workload.Scale
	Seed    int64
	Machine machine.Config
	// Quick reduces the design-space sweep for Tables 8–11.
	Quick bool
	// Workers bounds the worker pool used for benchmark simulation and
	// design-space sweeps; <= 0 selects runtime.GOMAXPROCS(0). Results
	// are bit-identical for every worker count.
	Workers int
	// Progress, if non-nil, receives status lines while long steps run.
	// It may be called from several workers; calls are serialised.
	Progress func(format string, args ...interface{})
	// LogLevel filters Progress output (obs.Quiet/Info/Debug). The zero
	// value with a non-nil Progress behaves as obs.Info, preserving the
	// historical progress stream; obs.Debug adds per-evaluation lines.
	LogLevel obs.Level
	// Obs receives the suite's metrics, spans and run manifest; nil
	// selects the shared obs.Default() registry. Observability never
	// perturbs results: tables and figures are byte-identical with any
	// registry and any worker count.
	Obs *obs.Registry
}

// workerCount resolves the configured pool size, capped at limit.
func (c Config) workerCount(limit int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > limit {
		w = limit
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DefaultConfig returns the standard reproduction configuration: the
// paper's 16-node machine (Table 4) and the default workload scale.
func DefaultConfig() Config {
	return Config{Scale: workload.ScaleDefault, Seed: 1, Machine: machine.DefaultConfig()}
}

// BenchRun holds one benchmark's simulation outputs.
type BenchRun struct {
	Benchmark workload.Benchmark
	Trace     *trace.Trace
	Stats     machine.Stats
}

// Suite is a generated set of benchmark traces plus memoised sweep results.
type Suite struct {
	Config Config
	CM     core.Machine
	Runs   []BenchRun

	sweeps map[core.UpdateMode][]search.Stats

	obs      *obs.Registry
	log      *obs.Logger
	manifest obs.Manifest

	// spanMu guards the current span parent path; suite artifacts are
	// orchestrated from one goroutine, so nested spans (a sweep inside a
	// table) stack onto their parent's path.
	spanMu     sync.Mutex
	spanParent string

	benchMu   sync.Mutex
	benchRecs []SweepRecord
}

// initObs resolves the suite's registry and logger from its config and
// stamps the run manifest.
func (s *Suite) initObs() {
	s.obs = s.Config.Obs
	if s.obs == nil {
		s.obs = obs.Default()
	}
	level := s.Config.LogLevel
	if level == obs.Quiet && s.Config.Progress != nil {
		level = obs.Info
	}
	s.log = obs.NewLogger(level, s.Config.Progress)
	s.manifest = obs.NewManifest(s.Config.Seed, s.Config.Scale.String(), s.Config.Workers)
	s.obs.SetManifest(s.manifest)
}

// Obs returns the registry receiving the suite's metrics and spans.
func (s *Suite) Obs() *obs.Registry { return s.obs }

// Manifest returns the run-identity manifest stamped when the suite was
// created.
func (s *Suite) Manifest() obs.Manifest { return s.manifest }

// span starts a timed span nested under the currently open suite span
// (if any) and returns its end function.
func (s *Suite) span(name string) func() {
	s.spanMu.Lock()
	parent := s.spanParent
	full := name
	if parent != "" {
		full = parent + "/" + name
	}
	s.spanParent = full
	s.spanMu.Unlock()
	done := s.obs.Span(full)
	return func() {
		done()
		s.spanMu.Lock()
		s.spanParent = parent
		s.spanMu.Unlock()
	}
}

// NewSuite runs every benchmark through the simulator and returns the
// ready-to-evaluate suite. The per-benchmark simulations are independent
// (each owns its machine and deterministic scheduler seed), so they run on
// the configured worker pool; Runs keeps the workload.All order regardless.
func NewSuite(cfg Config) *Suite {
	s := &Suite{
		Config: cfg,
		CM:     core.Machine{Nodes: cfg.Machine.Nodes, LineBytes: cfg.Machine.LineBytes},
		sweeps: make(map[core.UpdateMode][]search.Stats),
	}
	s.initObs()
	defer s.span("generate")()
	benches := workload.All(cfg.Scale)
	runs := make([]BenchRun, len(benches))
	workers := cfg.workerCount(len(benches))
	var wg sync.WaitGroup
	idx := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				b := benches[i]
				s.progress("simulating %s (%s)", b.Name(), b.Input())
				m := machine.New(cfg.Machine)
				b.Run(m, cfg.Machine.Nodes, cfg.Seed)
				tr := m.Finish()
				runs[i] = BenchRun{Benchmark: b, Trace: tr, Stats: m.Stats()}
			}
		}()
	}
	for i := range benches {
		idx <- i
	}
	close(idx)
	wg.Wait()
	s.Runs = runs
	return s
}

// NewSuiteFromRuns builds a suite around pre-generated benchmark runs
// (e.g. traces loaded from disk); machine statistics may be zero in that
// case, which only affects Tables 4 and 5.
func NewSuiteFromRuns(cfg Config, runs []BenchRun) *Suite {
	s := &Suite{
		Config: cfg,
		CM:     core.Machine{Nodes: cfg.Machine.Nodes, LineBytes: cfg.Machine.LineBytes},
		Runs:   runs,
		sweeps: make(map[core.UpdateMode][]search.Stats),
	}
	s.initObs()
	return s
}

// progress emits an info-level status line through the suite's leveled
// logger (which serialises sink calls, so Config.Progress may touch
// unguarded state).
func (s *Suite) progress(format string, args ...interface{}) {
	s.log.Infof(format, args...)
}

// NamedTraces adapts the suite for the search package.
func (s *Suite) NamedTraces() []search.NamedTrace {
	nts := make([]search.NamedTrace, len(s.Runs))
	for i, r := range s.Runs {
		nts[i] = search.NamedTrace{Name: r.Benchmark.Name(), Trace: r.Trace}
	}
	return nts
}

// Table renders the paper table with the given number (1–11). Tables 1
// and 2 are structural (the taxonomy's indexing families and the metric
// definitions); 3–11 are measured. Each render is wrapped in a
// "table/N" span; sweeps run inside nest under it.
func (s *Suite) Table(n int) (string, error) {
	if n >= 1 && n <= 11 {
		defer s.span(fmt.Sprintf("table/%d", n))()
	}
	switch n {
	case 1:
		return s.table1(), nil
	case 2:
		return s.table2(), nil
	case 3:
		return s.table3(), nil
	case 4:
		return s.table4(), nil
	case 5:
		return s.table5(), nil
	case 6:
		return s.table6(), nil
	case 7:
		return s.table7()
	case 8:
		return s.topTable(8, core.Direct, true)
	case 9:
		return s.topTable(9, core.Forwarded, true)
	case 10:
		return s.topTable(10, core.Direct, false)
	case 11:
		return s.topTable(11, core.Forwarded, false)
	default:
		return "", fmt.Errorf("experiments: no table %d (paper tables 1-11)", n)
	}
}

// table1 renders the paper's Table 1 — the 16 indexing families of the
// global predictor and where each can be physically distributed — derived
// from the taxonomy code itself (core.IndexSpec.Distribution).
func (s *Suite) table1() string {
	t := report.NewTable("Table 1: indexing schemes for the global predictor",
		"No.", "pid", "pc", "dir", "addr", "at proc.", "at dir.", "Comments")
	mark := func(b bool) string {
		if b {
			return "Y"
		}
		return "-"
	}
	for row := 0; row < 16; row++ {
		spec := core.IndexSpec{
			UsePID: row&8 != 0,
			UseDir: row&2 != 0,
		}
		if row&4 != 0 {
			spec.PCBits = 1
		}
		if row&1 != 0 {
			spec.AddrBits = 1
		}
		d := spec.Distribution()
		comment := ""
		switch {
		case row == 0:
			comment = "1-entry, centralized"
		case d.Centralized:
			comment = "centralized"
		case row == 2:
			comment = "1 entry per directory"
		case row == 8:
			comment = "1 entry per processor"
		}
		t.AddRowf(fmt.Sprint(row), mark(spec.UsePID), mark(spec.PCBits > 0),
			mark(spec.UseDir), mark(spec.AddrBits > 0),
			mark(d.AtProcessors), mark(d.AtDirectory), comment)
	}
	return t.String()
}

// table2 renders the paper's Table 2 — the screening-test statistics.
func (s *Suite) table2() string {
	t := report.NewTable("Table 2: definitions of statistics",
		"Statistic", "Definition", "Meaning")
	t.AddRowf("Prevalence", "(TP+FN)/(TP+TN+FP+FN)", "base rate of true sharing; bounds achievable benefit")
	t.AddRowf("Sensitivity", "TP/(TP+FN)", "share of true sharing the scheme captures")
	t.AddRowf("PVP", "TP/(TP+FP)", "share of forwarding traffic that is useful")
	t.AddRowf("Specificity", "TN/(TN+FP)", "share of non-sharing correctly left alone")
	t.AddRowf("PVN", "TN/(TN+FN)", "share of negative predictions that are right")
	return t.String()
}

// FigurePanel is one panel of a paper figure: a labelled x-axis of index
// combinations and the measured series over them.
type FigurePanel struct {
	Title  string
	Labels []string
	Series []report.Series
}

// Figure renders the paper figure with the given number (6–9), wrapped
// in a "figure/N" span.
func (s *Suite) Figure(n int) (string, error) {
	if n >= 6 && n <= 9 {
		defer s.span(fmt.Sprintf("figure/%d", n))()
	}
	title, panels, err := s.figurePanels(n)
	if err != nil {
		return "", err
	}
	out := title + "\n"
	for _, p := range panels {
		out += report.RenderSeries("-- "+p.Title+" --", p.Labels, p.Series)
	}
	return out, nil
}

// FigureDetail renders a paper figure computed over a single benchmark's
// trace instead of the cross-benchmark average — the per-program view the
// paper's averaged figures hide.
func (s *Suite) FigureDetail(n int, bench string) (string, error) {
	for _, r := range s.Runs {
		if r.Benchmark.Name() != bench {
			continue
		}
		sub := NewSuiteFromRuns(s.Config, []BenchRun{r})
		title, panels, err := sub.figurePanels(n)
		if err != nil {
			return "", err
		}
		out := fmt.Sprintf("%s — %s only\n", title, bench)
		for _, p := range panels {
			out += report.RenderSeries("-- "+p.Title+" --", p.Labels, p.Series)
		}
		return out, nil
	}
	return "", fmt.Errorf("experiments: unknown benchmark %q", bench)
}

// FigureCSV returns the figure's data as CSV, one file per panel, keyed by
// a filesystem-friendly name like "figure6_direct.csv".
func (s *Suite) FigureCSV(n int) (map[string]string, error) {
	defer s.span(fmt.Sprintf("figure-csv/%d", n))()
	_, panels, err := s.figurePanels(n)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(panels))
	for _, p := range panels {
		name := fmt.Sprintf("figure%d_%s.csv", n, sanitize(p.Title))
		out[name] = report.SeriesCSV(p.Labels, p.Series)
	}
	return out, nil
}

// FigureSVG returns the figure as standalone SVG charts, one file per
// panel, keyed like "figure6_direct_update.svg".
func (s *Suite) FigureSVG(n int) (map[string]string, error) {
	defer s.span(fmt.Sprintf("figure-svg/%d", n))()
	title, panels, err := s.figurePanels(n)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(panels))
	for _, p := range panels {
		name := fmt.Sprintf("figure%d_%s.svg", n, sanitize(p.Title))
		out[name] = report.RenderSVG(title+" — "+p.Title, p.Labels, p.Series)
	}
	return out, nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
		case r == ' ' || r == '-' || r == '_':
			out = append(out, '_')
		}
	}
	return string(out)
}

func (s *Suite) figurePanels(n int) (string, []FigurePanel, error) {
	var (
		title  string
		panels []FigurePanel
		err    error
	)
	switch n {
	case 6:
		title = "Figure 6: Intersection prediction (history depth 2, 16-bit max index)"
		panels, err = s.figureFn(core.Inter, 2, 16)
	case 7:
		title = "Figure 7: Union prediction (history depth 2, 16-bit max index)"
		panels, err = s.figureFn(core.Union, 2, 16)
	case 8:
		title = "Figure 8: PAs prediction (history depth 1, 12-bit max index)"
		panels, err = s.figureFn(core.PAs, 1, 12)
	case 9:
		title = "Figure 9: direct update, history depths 2 vs 4"
		panels, err = s.figure9()
	default:
		return "", nil, fmt.Errorf("experiments: no figure %d (paper figures 6-9)", n)
	}
	if err != nil {
		return "", nil, err
	}
	return title, panels, nil
}

// table3 reports workload inputs (paper Table 3).
func (s *Suite) table3() string {
	t := report.NewTable(fmt.Sprintf("Table 3: benchmark input size (scale=%s)", s.Config.Scale),
		"Benchmark", "Input")
	for _, r := range s.Runs {
		t.AddRow(r.Benchmark.Name(), r.Benchmark.Input())
	}
	return t.String()
}

// table4 reports the simulated system parameters (paper Table 4).
func (s *Suite) table4() string {
	cfg := s.Config.Machine
	t := report.NewTable("Table 4: system parameters", "Component", "Configuration")
	t.AddRow("Nodes", fmt.Sprintf("%d, 2-D torus interconnect", cfg.Nodes))
	t.AddRow("L1", fmt.Sprintf("%dKbyte %d-way, %d-byte lines",
		cfg.L1.SizeBytes>>10, cfg.L1.Assoc, cfg.L1.LineBytes))
	t.AddRow("L2", fmt.Sprintf("%dKbyte %d-way, %d-byte lines",
		cfg.L2.SizeBytes>>10, cfg.L2.Assoc, cfg.L2.LineBytes))
	t.AddRow("Local latency", fmt.Sprintf("%d cycles", cfg.LocalLatency))
	t.AddRow("Remote latency", fmt.Sprintf("%d cycles", cfg.RemoteLatency))
	t.AddRow("Coherence", "full-map invalidation directory, first-touch homes")
	return t.String()
}

// table5 reports store-instruction and cache-block statistics (paper
// Table 5).
func (s *Suite) table5() string {
	t := report.NewTable("Table 5: store instruction and cache block statistics",
		"Benchmark", "MaxStaticStores/node", "MaxPredictedStores/node",
		"CacheBlocksTouched", "CoherenceStoreMisses")
	for _, r := range s.Runs {
		t.AddRow(r.Benchmark.Name(), r.Stats.MaxStaticStores, r.Stats.MaxPredictedStores,
			r.Stats.Directory.BlocksTouched, r.Stats.TotalStoreMisses)
	}
	return t.String()
}

// table6 reports prevalence of sharing (paper Table 6). The counts follow
// the paper's accounting: every prediction event contributes one decision
// per node.
func (s *Suite) table6() string {
	t := report.NewTable("Table 6: prevalence of sharing",
		"Benchmark", "SharingEvents", "SharingDecisions", "Prevalence(%)", "DegreeOfSharing")
	var avg float64
	for _, r := range s.Runs {
		var events, decisions uint64
		for _, e := range r.Trace.Events {
			events += uint64(e.FutureReaders.Count())
			decisions += uint64(s.CM.Nodes)
		}
		prev := 0.0
		if decisions > 0 {
			prev = float64(events) / float64(decisions)
		}
		avg += prev
		t.AddRowf(r.Benchmark.Name(), fmt.Sprint(events), fmt.Sprint(decisions),
			fmt.Sprintf("%.2f", prev*100), fmt.Sprintf("%.2f", prev*float64(s.CM.Nodes)))
	}
	avg /= float64(len(s.Runs))
	t.AddRowf("average", "", "", fmt.Sprintf("%.2f", avg*100), fmt.Sprintf("%.2f", avg*float64(s.CM.Nodes)))
	return t.String()
}

// table7 reports the schemes of earlier work (paper Table 7).
func (s *Suite) table7() (string, error) {
	rows := []struct {
		desc   string
		scheme string
	}{
		{"baseline-last", "last()1[direct]"},
		{"Kaxiras-instr.-last", "last(pid+pc8)1[direct]"},
		{"Kaxiras-instr.-inter.", "inter(pid+pc8)2[direct]"},
		{"Lai-address+pid-last", "last(pid+add8)1[direct]"},
		{"Kaxiras-instr.-last", "last(pid+pc8)1[forwarded]"},
		{"Kaxiras-instr.-inter.", "inter(pid+pc8)2[forwarded]"},
		{"Lai-address+pid-last", "last(pid+add8)1[forwarded]"},
	}
	schemes := make([]core.Scheme, len(rows))
	for i, r := range rows {
		sc, err := core.ParseScheme(r.scheme)
		if err != nil {
			return "", fmt.Errorf("experiments: table 7 scheme %q: %w", r.scheme, err)
		}
		schemes[i] = sc
	}
	stats, err := s.evaluate("table7", schemes, s.NamedTraces())
	if err != nil {
		return "", err
	}
	t := report.NewTable("Table 7: schemes reported by earlier work",
		"Description", "Scheme", "Update", "SizeLog2(bits)", "Sensitivity", "PVP")
	for i, st := range stats {
		t.AddRowf(rows[i].desc, st.Scheme.String(), st.Scheme.Update.String(),
			fmt.Sprint(st.SizeLog2), fmt.Sprintf("%.2f", st.AvgSensitivity()),
			fmt.Sprintf("%.2f", st.AvgPVP()))
	}
	return t.String(), nil
}

// sweep returns (memoised) full-space results for the update mode.
func (s *Suite) sweep(mode core.UpdateMode) ([]search.Stats, error) {
	if st, ok := s.sweeps[mode]; ok {
		return st, nil
	}
	defer s.span(fmt.Sprintf("sweep-%v", mode))()
	sp := search.DefaultSpace(mode)
	if s.Config.Quick {
		sp = search.QuickSpace(mode)
	}
	schemes := sp.Schemes(s.CM)
	s.progress("sweeping %d schemes under %v update", len(schemes), mode)
	st, err := s.evaluate(fmt.Sprintf("sweep/%v", mode), schemes, s.NamedTraces())
	if err != nil {
		return nil, err
	}
	s.sweeps[mode] = st
	return st, nil
}

// topTable renders Tables 8–11: the top-10 schemes by PVP or sensitivity
// under an update mode.
func (s *Suite) topTable(n int, mode core.UpdateMode, byPVP bool) (string, error) {
	swept, err := s.sweep(mode)
	if err != nil {
		return "", err
	}
	stats := append([]search.Stats(nil), swept...)
	metric := "sensitivity"
	if byPVP {
		metric = "PVP"
		search.SortByPVP(stats)
	} else {
		search.SortBySensitivity(stats)
	}
	t := report.NewTable(
		fmt.Sprintf("Table %d: top 10 %s, %v update", n, metric, mode),
		"Scheme", "SizeLog2", "Prev", "PVP", "Sens")
	for i := 0; i < 10 && i < len(stats); i++ {
		st := stats[i]
		t.AddRowf(st.Scheme.String(), fmt.Sprint(st.SizeLog2),
			fmt.Sprintf("%.2f", st.AvgPrevalence()),
			fmt.Sprintf("%.2f", st.AvgPVP()),
			fmt.Sprintf("%.2f", st.AvgSensitivity()))
	}
	return t.String(), nil
}

func comboLabels(combos []core.IndexSpec) []string {
	labels := make([]string, len(combos))
	for i, c := range combos {
		labels[i] = c.String()
		if labels[i] == "" {
			labels[i] = "(none)"
		}
	}
	return labels
}

// figureFn computes Figures 6–8: one prediction function across the 16
// indexing combinations, one panel per update mechanism.
func (s *Suite) figureFn(fn core.Function, depth, maxBits int) ([]FigurePanel, error) {
	combos := search.FigureCombos(maxBits, s.CM)
	labels := comboLabels(combos)
	var panels []FigurePanel
	for _, mode := range core.UpdateModes() {
		schemes := make([]core.Scheme, len(combos))
		for i, c := range combos {
			schemes[i] = core.Scheme{Fn: fn, Index: c, Depth: depth, Update: mode}
		}
		stats, err := s.evaluate(fmt.Sprintf("figure/%v/%v", fn, mode), schemes, s.NamedTraces())
		if err != nil {
			return nil, err
		}
		sens := make([]float64, len(stats))
		pvp := make([]float64, len(stats))
		for i, st := range stats {
			sens[i] = st.AvgSensitivity()
			pvp[i] = st.AvgPVP()
		}
		panels = append(panels, FigurePanel{
			Title:  fmt.Sprintf("%v update", mode),
			Labels: labels,
			Series: []report.Series{
				{Name: "sensitivity", Values: sens},
				{Name: "pvp", Values: pvp},
			},
		})
	}
	return panels, nil
}

// figure9 computes Figure 9: direct update, intersection/union/PAs at
// history depths 2 and 4, one panel per function.
func (s *Suite) figure9() ([]FigurePanel, error) {
	var panels []FigurePanel
	for _, part := range []struct {
		fn      core.Function
		maxBits int
	}{{core.Inter, 16}, {core.Union, 16}, {core.PAs, 12}} {
		combos := search.FigureCombos(part.maxBits, s.CM)
		var schemes []core.Scheme
		for _, c := range combos {
			schemes = append(schemes,
				core.Scheme{Fn: part.fn, Index: c, Depth: 2, Update: core.Direct},
				core.Scheme{Fn: part.fn, Index: c, Depth: 4, Update: core.Direct})
		}
		stats, err := s.evaluate(fmt.Sprintf("figure9/%v", part.fn), schemes, s.NamedTraces())
		if err != nil {
			return nil, err
		}
		series := []report.Series{
			{Name: "pvp(2)"}, {Name: "sens(2)"}, {Name: "pvp(4)"}, {Name: "sens(4)"},
		}
		for i := 0; i < len(stats); i += 2 {
			series[0].Values = append(series[0].Values, stats[i].AvgPVP())
			series[1].Values = append(series[1].Values, stats[i].AvgSensitivity())
			series[2].Values = append(series[2].Values, stats[i+1].AvgPVP())
			series[3].Values = append(series[3].Values, stats[i+1].AvgSensitivity())
		}
		panels = append(panels, FigurePanel{
			Title:  part.fn.String(),
			Labels: comboLabels(combos),
			Series: series,
		})
	}
	return panels, nil
}
