package experiments

import (
	"strings"
	"testing"

	"cohpredict/internal/obs"
	"cohpredict/internal/workload"
)

// TestSuiteObservability: a suite with its own registry produces the
// span hierarchy (generate, table/N with a nested eval, sweep under the
// table), engine counters and table-occupancy gauges — and the metrics
// never change the artifact output (asserted against a second,
// uninstrumented suite).
func TestSuiteObservability(t *testing.T) {
	reg := obs.New()
	cfg := DefaultConfig()
	cfg.Scale = workload.ScaleTest
	cfg.Quick = true
	cfg.Obs = reg
	s := NewSuite(cfg)
	out, err := s.Table(8)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap.Counters["sweep_events_total"] == 0 {
		t.Error("sweep_events_total = 0 after a sweep")
	}
	if snap.Counters["sweep_cells_total"] == 0 {
		t.Error("sweep_cells_total = 0 after a sweep")
	}
	if snap.Gauges["sweep_hist_entries"] == 0 {
		t.Error("sweep_hist_entries gauge = 0 after a sweep")
	}
	if snap.Gauges["sweep_arena_chunks"] == 0 {
		t.Error("sweep_arena_chunks gauge = 0 after a sweep")
	}
	spans := map[string]obs.SpanSnapshot{}
	for _, sp := range snap.Spans {
		spans[sp.Path] = sp
	}
	for _, want := range []string{"generate", "table/8", "table/8/sweep-direct/eval"} {
		if _, ok := spans[want]; !ok {
			t.Errorf("missing span %q in %v", want, snap.Spans)
		}
	}
	if snap.Manifest == nil || snap.Manifest.Scale != "test" {
		t.Errorf("snapshot manifest = %+v", snap.Manifest)
	}

	// Per-worker busy time shows up however the pool was sized.
	busy := false
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "sweep_worker_") && v > 0 {
			busy = true
		}
	}
	if !busy {
		t.Errorf("no nonzero sweep_worker_*_busy_ns counter in %v", snap.Counters)
	}

	// Observability must not perturb results: an uninstrumented suite
	// renders the identical table.
	cfg2 := DefaultConfig()
	cfg2.Scale = workload.ScaleTest
	cfg2.Quick = true
	plain := NewSuite(cfg2)
	out2, err := plain.Table(8)
	if err != nil {
		t.Fatal(err)
	}
	if out != out2 {
		t.Error("Table 8 differs between instrumented and uninstrumented suites")
	}
}

// TestSuiteSpanTreeRenders: the span tree includes the generation phase
// and renders nested evals deeper than their parents.
func TestSuiteSpanTreeRenders(t *testing.T) {
	reg := obs.New()
	cfg := DefaultConfig()
	cfg.Scale = workload.ScaleTest
	cfg.Quick = true
	cfg.Obs = reg
	s := NewSuite(cfg)
	if _, err := s.Table(7); err != nil {
		t.Fatal(err)
	}
	tree := reg.SpanTree()
	if !strings.Contains(tree, "generate") || !strings.Contains(tree, "table/7/eval") {
		t.Errorf("span tree missing phases:\n%s", tree)
	}
}

// TestLogLevels: the debug level adds per-evaluation lines on top of the
// historical info-level progress stream; quiet (the default without a
// Progress callback) emits nothing.
func TestLogLevels(t *testing.T) {
	var info, debug []string
	cfg := DefaultConfig()
	cfg.Scale = workload.ScaleTest
	cfg.Quick = true
	cfg.Obs = obs.New()
	cfg.Progress = func(format string, args ...interface{}) { info = append(info, format) }
	s := NewSuite(cfg)
	if _, err := s.Table(7); err != nil {
		t.Fatal(err)
	}
	for _, line := range info {
		if strings.Contains(line, "evaluated") {
			t.Errorf("debug line leaked at info level: %q", line)
		}
	}

	cfg.Obs = obs.New()
	cfg.LogLevel = obs.Debug
	cfg.Progress = func(format string, args ...interface{}) { debug = append(debug, format) }
	s = NewSuite(cfg)
	if _, err := s.Table(7); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range debug {
		if strings.Contains(line, "evaluated") {
			found = true
		}
	}
	if !found {
		t.Errorf("no per-evaluation debug line at Debug level: %q", debug)
	}
	if len(debug) <= len(info) {
		t.Errorf("debug stream (%d lines) not longer than info stream (%d)", len(debug), len(info))
	}
}
