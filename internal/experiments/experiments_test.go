package experiments

import (
	"fmt"
	"strings"
	"testing"

	"cohpredict/internal/core"
	"cohpredict/internal/workload"
)

// testSuite builds one shared test-scale suite (trace generation is the
// expensive part).
var shared *Suite

func suite(t *testing.T) *Suite {
	t.Helper()
	if shared == nil {
		cfg := DefaultConfig()
		cfg.Scale = workload.ScaleTest
		cfg.Quick = true
		shared = NewSuite(cfg)
	}
	return shared
}

func TestSuiteGeneratesAllBenchmarks(t *testing.T) {
	s := suite(t)
	if len(s.Runs) != 7 {
		t.Fatalf("runs = %d", len(s.Runs))
	}
	for _, r := range s.Runs {
		if len(r.Trace.Events) == 0 {
			t.Errorf("%s: empty trace", r.Benchmark.Name())
		}
		if r.Trace.Nodes != 16 {
			t.Errorf("%s: nodes = %d", r.Benchmark.Name(), r.Trace.Nodes)
		}
	}
}

func TestAllTablesRender(t *testing.T) {
	s := suite(t)
	for n := 1; n <= 11; n++ {
		out, err := s.Table(n)
		if err != nil {
			t.Fatalf("Table(%d): %v", n, err)
		}
		if !strings.Contains(out, "Table") {
			t.Errorf("Table(%d) missing header:\n%s", n, out)
		}
	}
	if _, err := s.Table(0); err == nil {
		t.Error("Table(0) accepted")
	}
	if _, err := s.Table(12); err == nil {
		t.Error("Table(12) accepted")
	}
	// Table 1 structural checks: row 0 is centralized, row 15 distributes
	// both ways.
	t1, _ := s.Table(1)
	if !strings.Contains(t1, "1 entry per directory") || !strings.Contains(t1, "1 entry per processor") {
		t.Errorf("Table 1 missing distribution comments:\n%s", t1)
	}
}

func TestAllFiguresRender(t *testing.T) {
	s := suite(t)
	for n := 6; n <= 9; n++ {
		out, err := s.Figure(n)
		if err != nil {
			t.Fatalf("Figure(%d): %v", n, err)
		}
		if !strings.Contains(out, "Figure") {
			t.Errorf("Figure(%d) missing header:\n%s", n, out)
		}
		// Figures 6-8 show all three update mechanisms.
		if n < 9 && !strings.Contains(out, "ordered") {
			t.Errorf("Figure(%d) missing ordered panel", n)
		}
	}
	if _, err := s.Figure(5); err == nil {
		t.Error("Figure(5) accepted")
	}
}

func TestTable6CountsDecisionsPerPaper(t *testing.T) {
	s := suite(t)
	out, err := s.Table(6)
	if err != nil {
		t.Fatal(err)
	}
	// Paper accounting: decisions = 16 × events for each benchmark.
	for _, r := range s.Runs {
		if !strings.Contains(out, r.Benchmark.Name()) {
			t.Errorf("Table 6 missing %s", r.Benchmark.Name())
		}
	}
	if !strings.Contains(out, "average") {
		t.Error("Table 6 missing average row")
	}
}

func TestTable7BaselineIdentity(t *testing.T) {
	// The three direct-update last schemes of Table 7 must coincide
	// apart from cold-start noise — here we verify the rendered rows
	// carry the same sensitivity for baseline and Kaxiras-last.
	s := suite(t)
	out, err := s.Table(7)
	if err != nil {
		t.Fatal(err)
	}
	var baseRow, kaxRow string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "baseline-last") {
			baseRow = line
		}
		if strings.Contains(line, "last(pid+pc8)1") && strings.Contains(line, "direct") {
			kaxRow = line
		}
	}
	if baseRow == "" || kaxRow == "" {
		t.Fatalf("rows missing:\n%s", out)
	}
	baseFields := strings.Fields(baseRow)
	kaxFields := strings.Fields(kaxRow)
	// Last two columns are sensitivity and PVP.
	if baseFields[len(baseFields)-1] != kaxFields[len(kaxFields)-1] ||
		baseFields[len(baseFields)-2] != kaxFields[len(kaxFields)-2] {
		t.Errorf("Table 7 identity broken:\n%s\n%s", baseRow, kaxRow)
	}
}

func TestMemoisedSweep(t *testing.T) {
	s := suite(t)
	a, err := s.sweep(core.Direct)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.sweep(core.Direct)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("sweep not memoised")
	}
}

func TestNewSuiteFromRuns(t *testing.T) {
	src := suite(t)
	cfg := src.Config
	clone := NewSuiteFromRuns(cfg, src.Runs)
	out, err := clone.Table(6)
	if err != nil || !strings.Contains(out, "barnes") {
		t.Fatalf("clone Table(6): %v", err)
	}
	// Sweeps must work on a cloned suite (regression: nil map).
	if _, err := clone.Table(8); err != nil {
		t.Fatal(err)
	}
}

func TestFigureCSV(t *testing.T) {
	s := suite(t)
	files, err := s.FigureCSV(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 { // one panel per update mechanism
		t.Fatalf("files = %d", len(files))
	}
	csv, ok := files["figure6_direct_update.csv"]
	if !ok {
		t.Fatalf("missing direct panel; got %v", keys(files))
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "index,sensitivity,pvp" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 17 { // header + 16 combos
		t.Fatalf("rows = %d", len(lines))
	}
	if _, err := s.FigureCSV(99); err == nil {
		t.Fatal("bad figure accepted")
	}
}

func TestFigureSVG(t *testing.T) {
	s := suite(t)
	files, err := s.FigureSVG(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 { // inter, union, pas panels
		t.Fatalf("files = %d: %v", len(files), keys(files))
	}
	svg, ok := files["figure9_inter.svg"]
	if !ok || !strings.HasPrefix(svg, "<svg") {
		t.Fatalf("missing or malformed inter panel; got %v", keys(files))
	}
	if _, err := s.FigureSVG(99); err == nil {
		t.Fatal("bad figure accepted")
	}
}

func keys(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestFigureDetail(t *testing.T) {
	s := suite(t)
	out, err := s.FigureDetail(7, "ocean")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ocean only") || !strings.Contains(out, "direct update") {
		t.Fatalf("detail output:\n%s", out)
	}
	if _, err := s.FigureDetail(7, "nonesuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := s.FigureDetail(99, "ocean"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestParetoRenders(t *testing.T) {
	s := suite(t)
	out, err := s.Pareto(core.Direct)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Pareto") || !strings.Contains(out, "last()1") {
		t.Fatalf("pareto output:\n%s", out)
	}
	// The frontier must be monotone non-decreasing down the rows.
	prev := -1.0
	for _, line := range strings.Split(out, "\n")[3:] {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(fields[1], "%f", &v); err != nil {
			continue
		}
		if v < prev {
			t.Fatalf("frontier regressed: %s", line)
		}
		prev = v
	}
}

func TestExtensionsRender(t *testing.T) {
	s := suite(t)
	for name, ext := range map[string]func() (string, error){
		"sticky":   s.ExtensionSticky,
		"limited":  s.ExtensionLimitedDirectory,
		"learning": s.ExtensionLearning,
		"scaling":  s.ExtensionScaling,
		"mesi":     s.ExtensionMESI,
		"cosmos":   s.ExtensionCosmos,
		"online":   s.ExtensionOnlineForwarding,
	} {
		out, err := ext()
		if err != nil {
			t.Fatalf("%s extension: %v", name, err)
		}
		if !strings.Contains(out, "Extension") {
			t.Errorf("%s extension output missing header:\n%s", name, out)
		}
	}
}

func TestExtensionMESIEventsNeverIncrease(t *testing.T) {
	s := suite(t)
	out, err := s.ExtensionMESI()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out, "\n")[3:] {
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		var msi, mesi int
		if _, err := fmt.Sscanf(fields[1], "%d", &msi); err != nil {
			continue
		}
		if _, err := fmt.Sscanf(fields[2], "%d", &mesi); err != nil {
			continue
		}
		if mesi > msi {
			t.Fatalf("MESI produced more events than MSI: %s", line)
		}
	}
}

func TestSummaryRenders(t *testing.T) {
	s := suite(t)
	out, err := s.Summary()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Reproduction summary", "Prevalence", "Best PVP, direct",
		"Best sens, forwarded", "inter(", "union(",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestTopTablesShapeClaims(t *testing.T) {
	// The paper's headline shape claims, checked on the quick sweep:
	// every top-10 PVP scheme is an intersection scheme; every top-10
	// sensitivity scheme is a union scheme (Tables 8-11).
	s := suite(t)
	for _, n := range []int{8, 9} {
		out, _ := s.Table(n)
		for _, line := range strings.Split(out, "\n")[3:] {
			if strings.TrimSpace(line) == "" {
				continue
			}
			if !strings.HasPrefix(line, "inter(") {
				t.Errorf("Table %d non-intersection row: %s", n, line)
			}
		}
	}
	for _, n := range []int{10, 11} {
		out, _ := s.Table(n)
		for _, line := range strings.Split(out, "\n")[3:] {
			if strings.TrimSpace(line) == "" {
				continue
			}
			if !strings.HasPrefix(line, "union(") {
				t.Errorf("Table %d non-union row: %s", n, line)
			}
		}
	}
}
