// Package forward estimates what a data-forwarding protocol would gain
// from a prediction scheme. The paper deliberately evaluates prediction in
// isolation (§3.3: "an actual data forwarding protocol remains outside the
// scope of our work") but sketches the protocol it assumes: soon after a
// block is written, the directory pushes copies to the predicted readers;
// a forward is useful when the destination truly reads the block before
// the next write, wasted otherwise.
//
// This package implements that sketch as a post-hoc estimator over a
// coherence trace: it replays the trace, asks the prediction engine for a
// bitmap at every event, and accounts per-forward network cost (torus
// hops) and per-hit latency saved (a remote read miss that a forward
// eliminates saves RemoteLatency − LocalLatency cycles in the paper's
// Table 4 terms). It quantifies the bandwidth–latency trade-off the
// paper's summary discusses: sensitive schemes save more misses but
// inject more traffic.
package forward

import (
	"fmt"

	"cohpredict/internal/core"
	"cohpredict/internal/eval"
	"cohpredict/internal/topology"
	"cohpredict/internal/trace"
)

// Config parameterises the estimator.
type Config struct {
	// Torus is the interconnect; home nodes inject forwards.
	Torus *topology.Torus
	// LocalLatency and RemoteLatency are the paper's Table 4 memory
	// latencies in cycles.
	LocalLatency  int
	RemoteLatency int
}

// DefaultConfig matches the paper's machine.
func DefaultConfig() Config {
	return Config{Torus: topology.Square(16), LocalLatency: 52, RemoteLatency: 133}
}

// Result aggregates the estimator's accounting.
type Result struct {
	Scheme core.Scheme

	// UsefulForwards reached a node that truly read the block during
	// the epoch; WastedForwards did not.
	UsefulForwards uint64
	WastedForwards uint64
	// MissesEliminated counts remote read misses avoided (one per
	// useful forward — the reader finds the block locally).
	MissesEliminated uint64
	// MissesRemaining counts true readers that received no forward.
	MissesRemaining uint64
	// ForwardHopFlits is the hop-weighted network cost of all forwards.
	ForwardHopFlits uint64
	// CyclesSaved estimates latency saved: each eliminated miss saves
	// the remote-local latency gap.
	CyclesSaved uint64
}

// Yield is the fraction of forwarding traffic that was useful — the
// protocol-level realisation of the predictor's PVP.
func (r Result) Yield() float64 {
	total := r.UsefulForwards + r.WastedForwards
	if total == 0 {
		return 0
	}
	return float64(r.UsefulForwards) / float64(total)
}

// Coverage is the fraction of true remote reads served by a forward — the
// protocol-level realisation of the predictor's sensitivity.
func (r Result) Coverage() float64 {
	total := r.MissesEliminated + r.MissesRemaining
	if total == 0 {
		return 0
	}
	return float64(r.MissesEliminated) / float64(total)
}

// String summarises the result.
func (r Result) String() string {
	return fmt.Sprintf("%s: useful=%d wasted=%d yield=%.3f coverage=%.3f hops=%d cycles-saved=%d",
		r.Scheme.FullString(), r.UsefulForwards, r.WastedForwards,
		r.Yield(), r.Coverage(), r.ForwardHopFlits, r.CyclesSaved)
}

// Estimate replays the trace under the scheme and returns the forwarding
// accounting. The machine geometry (node count, line size) comes from m.
func Estimate(s core.Scheme, m core.Machine, cfg Config, tr *trace.Trace) Result {
	if cfg.Torus == nil {
		cfg.Torus = topology.Square(m.Nodes)
	}
	eng := eval.NewEngine(s, m)
	res := Result{Scheme: s}
	gap := cfg.RemoteLatency - cfg.LocalLatency
	if gap < 0 {
		gap = 0
	}
	for i := range tr.Events {
		ev := tr.Events[i]
		pred := eng.Step(ev)
		truth := ev.FutureReaders
		useful := pred.Intersect(truth)
		wasted := pred.Minus(truth)
		res.UsefulForwards += uint64(useful.Count())
		res.WastedForwards += uint64(wasted.Count())
		res.MissesEliminated += uint64(useful.Count())
		res.MissesRemaining += uint64(truth.Minus(pred).Count())
		res.CyclesSaved += uint64(useful.Count() * gap)
		for _, dst := range pred.Nodes() {
			res.ForwardHopFlits += uint64(cfg.Torus.Hops(ev.Dir, dst))
		}
	}
	return res
}

// Compare runs the estimator for several schemes over the same trace,
// returning results in input order — the bandwidth–latency trade-off table
// of the quickstart example.
func Compare(schemes []core.Scheme, m core.Machine, cfg Config, tr *trace.Trace) []Result {
	out := make([]Result, len(schemes))
	for i, s := range schemes {
		out[i] = Estimate(s, m, cfg, tr)
	}
	return out
}
