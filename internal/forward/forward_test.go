package forward

import (
	"strings"
	"testing"

	"cohpredict/internal/bitmap"
	"cohpredict/internal/core"
	"cohpredict/internal/trace"
)

var m16 = core.Machine{Nodes: 16, LineBytes: 64}

func mustParse(t *testing.T, s string) core.Scheme {
	t.Helper()
	sc, err := core.ParseScheme(s)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// stableTrace: one producer, fixed readers {2,5,9}, repeated.
func stableTrace(events int) *trace.Trace {
	readers := bitmap.New(2, 5, 9)
	tr := &trace.Trace{Nodes: 16}
	for i := 0; i < events; i++ {
		e := trace.Event{PID: 0, PC: 20, Dir: 3, Addr: 0x1000,
			InvReaders: readers, FutureReaders: readers}
		if i > 0 {
			e.HasPrev, e.PrevPID, e.PrevPC = true, 0, 20
		} else {
			e.InvReaders = bitmap.Empty
		}
		tr.Events = append(tr.Events, e)
	}
	return tr
}

func TestPerfectPredictionPerfectYield(t *testing.T) {
	tr := stableTrace(100)
	r := Estimate(mustParse(t, "last()1"), m16, DefaultConfig(), tr)
	if r.Yield() != 1 {
		t.Errorf("yield = %v", r.Yield())
	}
	if r.Coverage() < 0.95 {
		t.Errorf("coverage = %v", r.Coverage())
	}
	// 3 readers × 99 predicted events (first event unpredicted).
	if r.UsefulForwards != 3*99 {
		t.Errorf("useful = %d", r.UsefulForwards)
	}
	if r.WastedForwards != 0 {
		t.Errorf("wasted = %d", r.WastedForwards)
	}
	wantCycles := r.UsefulForwards * uint64(133-52)
	if r.CyclesSaved != wantCycles {
		t.Errorf("cycles = %d, want %d", r.CyclesSaved, wantCycles)
	}
}

func TestHopAccounting(t *testing.T) {
	tr := stableTrace(2)
	cfg := DefaultConfig()
	r := Estimate(mustParse(t, "last()1"), m16, cfg, tr)
	// Second event forwards to {2,5,9} from home 3.
	want := uint64(cfg.Torus.Hops(3, 2) + cfg.Torus.Hops(3, 5) + cfg.Torus.Hops(3, 9))
	if r.ForwardHopFlits != want {
		t.Errorf("hops = %d, want %d", r.ForwardHopFlits, want)
	}
}

func TestNoForwardsNoDivideByZero(t *testing.T) {
	tr := &trace.Trace{Nodes: 16, Events: []trace.Event{{PID: 0, PC: 16}}}
	r := Estimate(mustParse(t, "inter(pid+pc8)4"), m16, DefaultConfig(), tr)
	if r.Yield() != 0 || r.Coverage() != 0 {
		t.Errorf("empty result yields %v/%v", r.Yield(), r.Coverage())
	}
}

func TestWastedForwardsCounted(t *testing.T) {
	// Readers change every epoch: last-prediction always forwards to the
	// previous (now wrong) reader.
	tr := &trace.Trace{Nodes: 16}
	for i := 0; i < 50; i++ {
		cur := bitmap.New(1 + i%10)
		next := bitmap.New(1 + (i+1)%10)
		e := trace.Event{PID: 0, PC: 20, Dir: 0, Addr: 0x40,
			InvReaders: cur, FutureReaders: next}
		if i > 0 {
			e.HasPrev, e.PrevPID, e.PrevPC = true, 0, 20
		}
		tr.Events = append(tr.Events, e)
	}
	r := Estimate(mustParse(t, "last()1"), m16, DefaultConfig(), tr)
	if r.WastedForwards == 0 {
		t.Fatal("no wasted forwards on a shifting pattern")
	}
	if r.Yield() > 0.1 {
		t.Errorf("yield = %v, want ≈ 0", r.Yield())
	}
	if r.MissesRemaining == 0 {
		t.Error("unserved readers not counted")
	}
}

func TestUnionCoversMoreAtMoreCost(t *testing.T) {
	// Alternating reader sets: union-2 covers both, inter-2 covers the
	// intersection (nothing), realising the bandwidth-latency trade-off.
	a, b := bitmap.New(2), bitmap.New(5)
	tr := &trace.Trace{Nodes: 16}
	for i := 0; i < 100; i++ {
		cur, next := a, b
		if i%2 == 1 {
			cur, next = b, a
		}
		e := trace.Event{PID: 0, PC: 20, Dir: 0, Addr: 0x40,
			InvReaders: cur, FutureReaders: next}
		if i > 0 {
			e.HasPrev, e.PrevPID, e.PrevPC = true, 0, 20
		}
		tr.Events = append(tr.Events, e)
	}
	union := Estimate(mustParse(t, "union(add4)2"), m16, DefaultConfig(), tr)
	inter := Estimate(mustParse(t, "inter(add4)2"), m16, DefaultConfig(), tr)
	if union.Coverage() <= inter.Coverage() {
		t.Errorf("union coverage %v should exceed inter %v", union.Coverage(), inter.Coverage())
	}
	if union.ForwardHopFlits <= inter.ForwardHopFlits {
		t.Errorf("union traffic %d should exceed inter %d", union.ForwardHopFlits, inter.ForwardHopFlits)
	}
}

func TestCompare(t *testing.T) {
	tr := stableTrace(20)
	schemes := []core.Scheme{mustParse(t, "last()1"), mustParse(t, "union(add4)4")}
	rs := Compare(schemes, m16, DefaultConfig(), tr)
	if len(rs) != 2 || rs[0].Scheme.Fn != core.Last {
		t.Fatalf("Compare = %+v", rs)
	}
	if !strings.Contains(rs[0].String(), "yield") {
		t.Error("String missing fields")
	}
}

func TestNilTorusDefaults(t *testing.T) {
	tr := stableTrace(5)
	cfg := Config{LocalLatency: 52, RemoteLatency: 133}
	r := Estimate(mustParse(t, "last()1"), m16, cfg, tr)
	if r.UsefulForwards == 0 {
		t.Fatal("estimate with nil torus failed")
	}
}
