package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkAtomicOnly enforces atomic access discipline on two kinds of
// struct fields:
//
//   - every field whose type comes from sync/atomic (atomic.Uint64,
//     atomic.Value, atomic.Pointer[T], ...) — these are auto-enrolled,
//     no annotation needed;
//   - plain-typed fields annotated //predlint:atomic — the legacy style
//     where a uint64 is only ever touched through atomic.LoadUint64 /
//     atomic.StoreUint64 on its address.
//
// An atomic-typed field may only be used as the receiver of a method
// call (or method value). Using it in value context copies the atomic —
// the copy's state is disconnected from the original — and taking its
// address hands out a channel for plain access, so both are findings;
// the one sanctioned address-taking is passing &x.f straight to a
// sync/atomic package function, which is exactly how annotated plain
// fields must be accessed (anything else on those is a plain load/store
// finding). Pre-publication writes to annotated plain fields through
// function-local values are exempt, mirroring the guardedby rule.
func checkAtomicOnly(c *Context) {
	auto, ann := c.collectAtomicTargets()
	if len(auto) == 0 && len(ann) == 0 {
		return
	}
	for _, pkg := range c.Pkgs {
		for _, file := range pkg.Files {
			w := &atomicWalker{c: c, pkg: pkg, auto: auto, ann: ann}
			w.file(file)
		}
	}
}

// collectAtomicTargets gathers the auto-enrolled sync/atomic fields and
// the //predlint:atomic annotated plain fields.
func (c *Context) collectAtomicTargets() (auto, ann map[types.Object]bool) {
	auto, ann = map[types.Object]bool{}, map[types.Object]bool{}
	for _, pkg := range c.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				for _, field := range st.Fields.List {
					text, pos := fieldDirective(field, atomicMarker)
					if text != "" {
						c.consume(pos)
					}
					for _, name := range field.Names {
						obj := pkg.Info.Defs[name]
						if obj == nil {
							continue
						}
						switch {
						case isAtomicType(obj.Type()):
							auto[obj] = true
						case text != "":
							ann[obj] = true
						}
					}
				}
				return true
			})
		}
	}
	return auto, ann
}

// isAtomicType reports whether t is a named type (or generic instance)
// declared in sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync/atomic"
}

// atomicWalker scans one file with an explicit ancestor stack, so each
// target-field selector can be classified by its use context.
type atomicWalker struct {
	c     *Context
	pkg   *Package
	auto  map[types.Object]bool
	ann   map[types.Object]bool
	stack []ast.Node
	fn    *ast.FuncDecl // enclosing function, for the local-base exemption
}

func (w *atomicWalker) file(f *ast.File) {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			w.fn = fd
		} else {
			w.fn = nil
		}
		w.stack = w.stack[:0]
		ast.Inspect(decl, func(n ast.Node) bool {
			if n == nil {
				w.stack = w.stack[:len(w.stack)-1]
				return false
			}
			if sel, ok := n.(*ast.SelectorExpr); ok {
				w.classify(sel)
			}
			w.stack = append(w.stack, n)
			return true
		})
	}
}

// parent returns the i-th ancestor of the node under inspection (1 = its
// direct parent).
func (w *atomicWalker) parent(i int) ast.Node {
	if len(w.stack) < i {
		return nil
	}
	return w.stack[len(w.stack)-i]
}

func (w *atomicWalker) classify(sel *ast.SelectorExpr) {
	selection, ok := w.pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	obj := selection.Obj()
	isAuto, isAnn := w.auto[obj], w.ann[obj]
	if !isAuto && !isAnn {
		return
	}
	field := obj.Name()
	parent := w.parent(1)

	// &x.f straight into a sync/atomic call is the sanctioned address
	// form for both kinds of field.
	if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND && u.X == sel {
		if w.atomicCallArg(u) {
			return
		}
		if isAuto {
			w.c.reportf("atomiconly", "atomiconly/escape", sel.Sel.Pos(),
				"address of atomic field %s escapes: anything holding it can bypass the atomic API", field)
		} else {
			w.c.reportf("atomiconly", "atomiconly/escape", sel.Sel.Pos(),
				"address of //predlint:atomic field %s taken outside a sync/atomic call", field)
		}
		return
	}

	if isAuto {
		// Receiver of a method call or method value: the only legal use.
		if p, ok := parent.(*ast.SelectorExpr); ok && p.X == sel {
			if ms, ok := w.pkg.Info.Selections[p]; ok && ms.Kind() == types.MethodVal {
				return
			}
		}
		if w.assignTarget(sel, parent) {
			w.c.reportf("atomiconly", "atomiconly/plain-access", sel.Sel.Pos(),
				"plain store to atomic field %s: use its Store method", field)
			return
		}
		w.c.reportf("atomiconly", "atomiconly/copy", sel.Sel.Pos(),
			"atomic field %s used by value: the copy's state is disconnected from the original", field)
		return
	}

	// Annotated plain field: every other access is a plain load/store.
	if w.fn != nil && w.localBaseExpr(sel.X) {
		return // pre-publication construction through a local value
	}
	w.c.reportf("atomiconly", "atomiconly/plain-access", sel.Sel.Pos(),
		"plain access to //predlint:atomic field %s: go through sync/atomic on its address", field)
}

// assignTarget reports whether sel is a direct assignment LHS or IncDec
// operand.
func (w *atomicWalker) assignTarget(sel *ast.SelectorExpr, parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == sel {
				return true
			}
		}
	case *ast.IncDecStmt:
		return p.X == sel
	}
	return false
}

// atomicCallArg reports whether the &field expression is an argument to
// a sync/atomic package function (atomic.AddUint64(&x.n, 1), ...).
func (w *atomicWalker) atomicCallArg(u *ast.UnaryExpr) bool {
	call, ok := w.parent(2).(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, a := range call.Args {
		if a == u {
			path, _ := pkgFunc(w.pkg.Info, call)
			return path == "sync/atomic"
		}
	}
	return false
}

// localBaseExpr mirrors gbWalker.localBase for the atomic walker: true
// when the access bottoms out in a variable declared in the enclosing
// function body.
func (w *atomicWalker) localBaseExpr(e ast.Expr) bool {
	gw := &gbWalker{c: w.c, pkg: w.pkg, fn: w.fn}
	return gw.localBase(e)
}
