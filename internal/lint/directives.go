package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directives indexes the tree's predlint comment annotations:
//
//	//predlint:ignore check1,check2 reason...
//	//predlint:hotpath
//
// An ignore comment suppresses the named checks on its own line and on
// the line below it, so it works both as a trailing comment and as a
// comment-above. "all" suppresses every check. A hotpath comment in a
// function's doc group opts the function into the hotpath check.
type directives struct {
	// ignores[file][line] is the set of check names suppressed at that
	// line ("all" matches any check).
	ignores map[string]map[int]map[string]bool
	// hotpath holds the declaration positions of annotated functions.
	hotpath map[token.Pos]bool
}

const (
	ignorePrefix  = "predlint:ignore"
	hotpathMarker = "predlint:hotpath"
)

func collectDirectives(root string, fset *token.FileSet, pkgs []*Package) *directives {
	d := &directives{
		ignores: map[string]map[int]map[string]bool{},
		hotpath: map[token.Pos]bool{},
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d.addComment(root, fset, c)
				}
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if directiveText(c.Text) == hotpathMarker {
						d.hotpath[fd.Pos()] = true
					}
				}
			}
		}
	}
	return d
}

// directiveText strips the comment markers and leading space from a
// comment line, returning "" when it is not a predlint directive.
func directiveText(text string) string {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "predlint:") {
		return ""
	}
	return text
}

func (d *directives) addComment(root string, fset *token.FileSet, c *ast.Comment) {
	text := directiveText(c.Text)
	rest, ok := strings.CutPrefix(text, ignorePrefix)
	if !ok {
		return
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return // malformed: no check names; never silently suppress everything
	}
	checks := map[string]bool{}
	for _, name := range strings.Split(fields[0], ",") {
		if name = strings.TrimSpace(name); name != "" {
			checks[name] = true
		}
	}
	pos := fset.Position(c.Pos())
	file := relPath(root, pos.Filename)
	lines := d.ignores[file]
	if lines == nil {
		lines = map[int]map[string]bool{}
		d.ignores[file] = lines
	}
	// The comment guards its own line (trailing form) and the next
	// (comment-above form).
	for _, line := range []int{pos.Line, pos.Line + 1} {
		set := lines[line]
		if set == nil {
			set = map[string]bool{}
			lines[line] = set
		}
		for name := range checks {
			set[name] = true
		}
	}
}

// suppressed reports whether a finding of the given check at file:line is
// covered by an ignore comment.
func (d *directives) suppressed(file string, line int, check string) bool {
	set := d.ignores[file][line]
	return set != nil && (set[check] || set["all"])
}

// isHotpath reports whether the function declaration carries the
// //predlint:hotpath annotation.
func (d *directives) isHotpath(fd *ast.FuncDecl) bool {
	return d.hotpath[fd.Pos()]
}
