package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directives indexes the tree's predlint comment annotations:
//
//	//predlint:ignore check1,check2 reason...
//	//predlint:hotpath
//	//predlint:guardedby mu            (struct field)
//	//predlint:atomic                  (struct field)
//	//predlint:owned                   (type declaration)
//	//predlint:handoff                 (function declaration)
//
// An ignore comment suppresses the named checks on its own line and on
// the line below it, so it works both as a trailing comment and as a
// comment-above. "all" suppresses every check. The annotation markers are
// parsed by their checks from the declarations they document; directives
// only records which comment positions belong to which marker so the
// staleignore check can tell a consumed annotation from a dangling one.
type directives struct {
	// ignores[file][line] holds the ignore records guarding that line;
	// one record appears under both its own line and the next.
	ignores map[string]map[int][]*ignoreRecord
	// records lists every distinct ignore comment once, in source order
	// of discovery, for the staleignore audit.
	records []*ignoreRecord
	// byPos finds an ignore record from its comment position.
	byPos map[token.Pos]*ignoreRecord
	// hotpath holds the declaration positions of annotated functions;
	// hotpathDocs the comment positions that attached to a declaration.
	hotpath     map[token.Pos]bool
	hotpathDocs map[token.Pos]bool
}

// ignoreRecord is one //predlint:ignore comment: where it is, what it
// names, why, and whether any check consulted it this run.
type ignoreRecord struct {
	pos    token.Pos
	text   string // directive text, comment markers stripped
	checks map[string]bool
	reason string
	used   bool
}

const (
	ignorePrefix    = "predlint:ignore"
	hotpathMarker   = "predlint:hotpath"
	guardedbyPrefix = "predlint:guardedby"
	atomicMarker    = "predlint:atomic"
	ownedMarker     = "predlint:owned"
	handoffMarker   = "predlint:handoff"
)

func collectDirectives(root string, fset *token.FileSet, pkgs []*Package) *directives {
	d := &directives{
		ignores:     map[string]map[int][]*ignoreRecord{},
		byPos:       map[token.Pos]*ignoreRecord{},
		hotpath:     map[token.Pos]bool{},
		hotpathDocs: map[token.Pos]bool{},
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d.addComment(root, fset, c)
				}
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if directiveText(c.Text) == hotpathMarker {
						d.hotpath[fd.Pos()] = true
						d.hotpathDocs[c.Pos()] = true
					}
				}
			}
		}
	}
	return d
}

// directiveText strips the comment markers and leading space from a
// comment line, returning "" when it is not a predlint directive.
func directiveText(text string) string {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "predlint:") {
		return ""
	}
	return text
}

func (d *directives) addComment(root string, fset *token.FileSet, c *ast.Comment) {
	text := directiveText(c.Text)
	rest, ok := strings.CutPrefix(text, ignorePrefix)
	if !ok {
		return
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return // malformed: no check names; never silently suppress everything
	}
	rec := &ignoreRecord{
		pos:    c.Pos(),
		text:   text,
		checks: map[string]bool{},
		reason: strings.TrimSpace(strings.Join(fields[1:], " ")),
	}
	for _, name := range strings.Split(fields[0], ",") {
		if name = strings.TrimSpace(name); name != "" {
			rec.checks[name] = true
		}
	}
	d.records = append(d.records, rec)
	d.byPos[c.Pos()] = rec
	pos := fset.Position(c.Pos())
	file := relPath(root, pos.Filename)
	lines := d.ignores[file]
	if lines == nil {
		lines = map[int][]*ignoreRecord{}
		d.ignores[file] = lines
	}
	// The comment guards its own line (trailing form) and the next
	// (comment-above form).
	for _, line := range []int{pos.Line, pos.Line + 1} {
		lines[line] = append(lines[line], rec)
	}
}

// suppressed reports whether a finding of the given check at file:line is
// covered by an ignore comment, marking every covering record as used so
// staleignore can tell live suppressions from dead ones.
func (d *directives) suppressed(file string, line int, check string) bool {
	hit := false
	for _, rec := range d.ignores[file][line] {
		if rec.checks[check] || rec.checks["all"] {
			rec.used = true
			hit = true
		}
	}
	return hit
}

// isHotpath reports whether the function declaration carries the
// //predlint:hotpath annotation.
func (d *directives) isHotpath(fd *ast.FuncDecl) bool {
	return d.hotpath[fd.Pos()]
}
