package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkHotpath enforces allocation discipline inside functions annotated
// //predlint:hotpath — the per-event paths where a single allocation or
// fmt call multiplies by millions of trace events. It flags:
//
//   - composite literals whose address is taken (&T{...} escapes),
//   - slice and map composite literals (always allocate),
//   - fmt.* calls (allocate and reflect),
//   - closures capturing an enclosing loop variable,
//   - implicit conversions of concrete values to interface parameters
//     (each boxes its operand),
//   - append inside a loop to a slice declared without capacity.
//
// It also enforces cfg.RequiredHotpaths: the kernels named there must
// exist and carry the annotation, so the discipline cannot be dodged by
// deleting the mark.
func checkHotpath(c *Context) {
	for _, pkg := range c.Pkgs {
		eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			if !c.dirs.isHotpath(fd) || fd.Body == nil {
				return
			}
			c.lintHotFunc(pkg, fd)
		})
	}
	c.enforceRequiredHotpaths()
}

// funcQualName is a declaration's config-matching name: FuncName for
// plain functions, Receiver.Method (pointer stripped) for methods.
func funcQualName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// enforceRequiredHotpaths reports every configured kernel that is
// missing or unannotated.
func (c *Context) enforceRequiredHotpaths() {
	for _, entry := range c.Cfg.RequiredHotpaths {
		var pkg *Package
		var want string
		for _, p := range c.Pkgs {
			if prefix := p.Path + "."; strings.HasPrefix(entry, prefix) {
				pkg, want = p, entry[len(prefix):]
				break
			}
		}
		if pkg == nil {
			c.findings = append(c.findings, Finding{
				File:    "(config)",
				Check:   "hotpath",
				Code:    "hotpath/config",
				Message: "required hot path " + entry + " names a package that is not in the module",
			})
			continue
		}
		var found *ast.FuncDecl
		eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			if funcQualName(fd) == want {
				found = fd
			}
		})
		switch {
		case found == nil:
			c.reportf("hotpath", "hotpath/missing", pkg.Files[0].Pos(),
				"required hot path %s.%s does not exist (update RequiredHotpaths or restore the kernel)",
				pkg.Path, want)
		case !c.dirs.isHotpath(found):
			c.reportf("hotpath", "hotpath/unmarked", found.Pos(),
				"%s is a required hot path but lacks the //predlint:hotpath annotation", want)
		}
	}
}

func (c *Context) lintHotFunc(pkg *Package, fd *ast.FuncDecl) {
	info := pkg.Info
	// loopVars maps loop-variable objects to true while their loop is in
	// scope; loopDepth tracks whether an append happens per iteration.
	loopVars := map[types.Object]bool{}

	var walk func(n ast.Node, inLoop bool, inClosure bool)
	inspect := func(n ast.Node, inLoop, inClosure bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				for _, s := range []ast.Stmt{m.Init, m.Post} {
					collectLoopVars(info, s, loopVars)
				}
				if m.Init != nil {
					walk(m.Init, inLoop, inClosure)
				}
				walk(m.Body, true, inClosure)
				return false
			case *ast.RangeStmt:
				for _, e := range []ast.Expr{m.Key, m.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							loopVars[obj] = true
						}
					}
				}
				walk(m.Body, true, inClosure)
				return false
			case *ast.FuncLit:
				c.lintClosure(pkg, m, loopVars)
				walk(m.Body, false, true)
				return false
			case *ast.UnaryExpr:
				if m.Op.String() == "&" {
					if _, ok := m.X.(*ast.CompositeLit); ok {
						c.reportf("hotpath", "hotpath/escape", m.Pos(),
							"&composite literal escapes to the heap in hot path %s", fd.Name.Name)
					}
				}
			case *ast.CompositeLit:
				if tv, ok := info.Types[m]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Slice, *types.Map:
						c.reportf("hotpath", "hotpath/alloc", m.Pos(),
							"%s composite literal allocates in hot path %s", kindName(tv.Type), fd.Name.Name)
					}
				}
			case *ast.CallExpr:
				c.lintHotCall(pkg, fd, m, inLoop)
			}
			return true
		})
	}
	walk = inspect
	walk(fd.Body, false, false)
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// collectLoopVars records variables defined in a for-init statement.
func collectLoopVars(info *types.Info, s ast.Stmt, out map[types.Object]bool) {
	assign, ok := s.(*ast.AssignStmt)
	if !ok {
		return
	}
	for _, lhs := range assign.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
	}
}

// lintClosure flags a func literal that references a variable belonging
// to an enclosing loop.
func (c *Context) lintClosure(pkg *Package, fl *ast.FuncLit, loopVars map[types.Object]bool) {
	if len(loopVars) == 0 {
		return
	}
	reported := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pkg.Info.Uses[id]; obj != nil && loopVars[obj] {
			c.reportf("hotpath", "hotpath/loop-capture", fl.Pos(),
				"closure captures loop variable %s (allocates and may alias across iterations)", id.Name)
			reported = true
		}
		return true
	})
}

func (c *Context) lintHotCall(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr, inLoop bool) {
	info := pkg.Info
	if path, name := pkgFunc(info, call); path == "fmt" {
		c.reportf("hotpath", "hotpath/fmt", call.Pos(), "fmt.%s call in hot path %s", name, fd.Name.Name)
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && inLoop {
		c.lintAppend(pkg, fd, call)
		return
	}
	// Implicit interface conversions: a concrete argument passed to an
	// interface parameter boxes its operand on every call.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarded slice, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if types.IsInterface(at.Type) || at.IsNil() {
			continue
		}
		c.reportf("hotpath", "hotpath/iface-box", arg.Pos(),
			"implicit conversion of %s to interface %s boxes the value in hot path %s",
			at.Type.String(), pt.String(), fd.Name.Name)
	}
}

// lintAppend flags per-iteration appends whose destination slice was
// declared without a capacity hint. Destinations declared outside the
// function (params, fields) are given the benefit of the doubt.
func (c *Context) lintAppend(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		return
	}
	known, prealloc := declHasPrealloc(pkg, fd, obj)
	if known && !prealloc {
		c.reportf("hotpath", "hotpath/append", call.Pos(),
			"append to %s inside a loop without preallocated capacity in hot path %s", id.Name, fd.Name.Name)
	}
}

// declHasPrealloc looks for obj's declaration inside the function and
// reports (found, preallocated): preallocated means declared via make
// with a non-zero length or an explicit capacity.
func declHasPrealloc(pkg *Package, fd *ast.FuncDecl, obj types.Object) (known, prealloc bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if known {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pkg.Info.Defs[id] != obj {
					continue
				}
				known = true
				if i < len(n.Rhs) {
					prealloc = isPreallocMake(n.Rhs[i])
				} else if len(n.Rhs) == 1 {
					prealloc = true // multi-value RHS: can't judge, allow
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pkg.Info.Defs[name] != obj {
					continue
				}
				known = true
				if i < len(n.Values) {
					prealloc = isPreallocMake(n.Values[i])
				}
			}
		}
		return true
	})
	return known, prealloc
}

// isPreallocMake reports whether the expression is make([]T, n) with a
// non-zero length or make([]T, n, c) with an explicit capacity.
func isPreallocMake(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	switch len(call.Args) {
	case 3:
		return true
	case 2:
		if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Value == "0" {
			return false
		}
		return true
	}
	return false
}
