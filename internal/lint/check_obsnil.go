package lint

import (
	"go/ast"
	"go/types"
)

// checkObsNil enforces the obs handle contract established in PR 2: a nil
// *Counter/*Gauge/*Histogram (and a nil *Registry) is a valid no-op, but
// only because every access goes through the nil-safe methods. Outside
// the obs package itself, code must therefore never touch handle fields
// directly nor construct handles with composite literals (bypassing the
// registry); both would turn "observability off" from a no-op into a
// panic.
func checkObsNil(c *Context) {
	handle := map[string]bool{}
	for _, n := range c.Cfg.ObsHandleTypes {
		handle[n] = true
	}
	isHandle := func(t types.Type) bool {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return false
		}
		return named.Obj().Pkg().Path() == c.Cfg.ObsPkg && handle[named.Obj().Name()]
	}
	for _, pkg := range c.Pkgs {
		if pkg.Path == c.Cfg.ObsPkg {
			continue
		}
		for sel, selection := range pkg.Info.Selections {
			if selection.Kind() != types.FieldVal {
				continue
			}
			if isHandle(selection.Recv()) {
				c.reportf("obsnil", "obsnil/field", sel.Sel.Pos(),
					"direct field access %s on obs handle %s: use the nil-safe methods",
					sel.Sel.Name, selection.Recv().String())
			}
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				if tv, ok := pkg.Info.Types[lit]; ok && isHandle(tv.Type) {
					c.reportf("obsnil", "obsnil/literal", lit.Pos(),
						"obs handle literal %s bypasses the registry: resolve handles via Registry methods", tv.Type.String())
				}
				return true
			})
		}
	}
}
