// Package hot exercises the hotpath check.
package hot

import "fmt"

type event struct{ id int }

// Sum is the fixture hot function; the constructs inside are violations.
//
//predlint:hotpath
func Sum(events []event) string {
	var labels []string
	var fns []func() int
	for _, ev := range events {
		labels = append(labels, ev.label())
		fns = append(fns, func() int { return ev.id })
	}
	p := &event{id: len(labels)}
	sink(p)
	box(len(fns))
	return fmt.Sprintf("%d", len(labels))
}

func (e event) label() string { return "e" }

func sink(e *event) {}

func box(v interface{}) {}

// Cold is unmarked: the same constructs are fine here.
func Cold(events []event) []string {
	out := make([]string, 0, len(events))
	for _, ev := range events {
		out = append(out, fmt.Sprint(ev.id))
	}
	return out
}
