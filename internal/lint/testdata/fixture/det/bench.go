package det

import "time"

// BenchClock reads the clock in a determinism-skip file (not flagged:
// bench.go is on the skip list).
func BenchClock() time.Time {
	return time.Now()
}
