// Package det is the fixture's deterministic package: each construct
// below either violates the determinism check or demonstrates an
// accepted pattern.
package det

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

// Stamp reads the wall clock (flagged).
func Stamp() time.Time {
	return time.Now()
}

// AllowedClock is on the fixture's clock allowlist (not flagged).
func AllowedClock() time.Duration {
	return time.Since(time.Now())
}

// Roll uses the global rand source (flagged).
func Roll() int {
	return rand.Int()
}

// Seeded uses an explicitly seeded generator (not flagged).
func Seeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Int()
}

// Env reads the environment (flagged).
func Env() string {
	return os.Getenv("HOME")
}

// Quiet reads the environment under a suppression comment (counted as
// suppressed, not reported).
func Quiet() string {
	//predlint:ignore determinism fixture exercises suppression
	return os.Getenv("HOME")
}

// Render iterates a map into ordered output (flagged: order-sensitive).
func Render(m map[string]int) string {
	out := ""
	for k := range m {
		out += fmt.Sprintf("%s,", k)
	}
	return out
}

// Tally iterates a map commutatively (not flagged).
func Tally(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
