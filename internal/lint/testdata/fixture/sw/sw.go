// Package sw exercises the exhaustive check.
package sw

import "fixture/enums"

// Partial misses enums.C and has no default (flagged).
func Partial(m enums.Mode) int {
	switch m {
	case enums.A:
		return 1
	case enums.B:
		return 2
	}
	return 0
}

// Full covers every constant (not flagged).
func Full(m enums.Mode) int {
	switch m {
	case enums.A, enums.B:
		return 1
	case enums.C:
		return 2
	}
	return 0
}

// Defaulted carries a default case (not flagged).
func Defaulted(m enums.Mode) int {
	switch m {
	default:
		return 0
	}
}
