// Package obs is the fixture observability package; Counter mirrors the
// real module's nil-safe handle contract.
package obs

// Counter is a nil-safe counter handle.
type Counter struct {
	N int64
}

// Value returns the count; safe on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.N
}
