// Package conc is the guardedby / atomiconly fixture: one violating and
// one accepted pattern per rule.
package conc

import (
	"sync"
	"sync/atomic"
)

// Counter packs every annotation form the two checks parse.
type Counter struct {
	mu sync.Mutex
	// count and total are mu-guarded.
	count int //predlint:guardedby mu
	total int //predlint:guardedby mu

	rw   sync.RWMutex
	view int //predlint:guardedby rw

	bad int //predlint:guardedby nosuch

	hits atomic.Uint64 // auto-enrolled: sync/atomic typed

	//predlint:atomic
	legacy uint64
}

// Inc is the accepted pattern: lock held on every path via defer.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
}

// View reads under RLock: accepted.
func (c *Counter) View() int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.view
}

// BumpView writes under RLock only: finding.
func (c *Counter) BumpView() {
	c.rw.RLock()
	c.view++
	c.rw.RUnlock()
}

// Flush misses the unlock on one branch, so the read below is not
// guarded on every path: finding.
func (c *Counter) Flush(early bool) int {
	c.mu.Lock()
	if early {
		c.mu.Unlock()
	}
	return c.count
}

// Reset writes with no lock at all: finding.
func (c *Counter) Reset() {
	c.count = 0
}

// NewCounter builds through a local value: pre-publication writes are
// exempt.
func NewCounter() *Counter {
	c := &Counter{}
	c.count = 1
	return c
}

// Mode locks on every switch arm before the access: accepted.
func (c *Counter) Mode(m int) int {
	switch m {
	case 0:
		c.mu.Lock()
	default:
		c.mu.Lock()
	}
	v := c.count
	c.mu.Unlock()
	return v
}

// WaitLock locks on every select arm before the access: accepted.
func (c *Counter) WaitLock(ch chan int) int {
	select {
	case <-ch:
		c.mu.Lock()
	case v := <-ch:
		_ = v
		c.mu.Lock()
	}
	n := c.count
	c.mu.Unlock()
	return n
}

// Sum holds the lock across the loop: accepted.
func (c *Counter) Sum(vals []int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, v := range vals {
		c.total += v
	}
	return c.total
}

// Total reads inside a deferred literal, which runs with the lock held
// at the defer site: accepted.
func (c *Counter) Total() (t int) {
	c.mu.Lock()
	defer func() {
		t = c.total
		c.mu.Unlock()
	}()
	return 0
}

// Leak spawns a goroutine that does not inherit the caller's lock:
// finding inside the literal.
func (c *Counter) Leak() {
	c.mu.Lock()
	go func() {
		c.total++
	}()
	c.mu.Unlock()
}

// Racy keeps a deliberate unguarded read for the suppression
// round-trip.
func (c *Counter) Racy() int {
	//predlint:ignore guardedby fixture exercises the guardedby suppression round-trip
	return c.count
}

// Hit goes through the atomic's method: accepted.
func (c *Counter) Hit() {
	c.hits.Add(1)
}

// SnapshotHits copies the atomic by value: finding.
func (c *Counter) SnapshotHits() atomic.Uint64 {
	return c.hits
}

// HitsPtr leaks the atomic's address: finding.
func (c *Counter) HitsPtr() *atomic.Uint64 {
	return &c.hits
}

// Legacy goes through sync/atomic on the annotated field's address:
// accepted.
func (c *Counter) Legacy() uint64 {
	return atomic.LoadUint64(&c.legacy)
}

// LegacyRacy plain-reads the annotated field: finding.
func (c *Counter) LegacyRacy() uint64 {
	return c.legacy
}
