// Package own is the goroutineown / staleignore fixture: handoff
// violations, accepted ownership patterns, and every way a predlint
// directive can rot.
package own

import (
	"sync"
	"sync/atomic"
)

// Buf is a pooled buffer with a single owner at any time.
//
//predlint:owned
type Buf struct {
	b []byte
}

var pool = sync.Pool{New: func() interface{} { return new(Buf) }}

// UseDeferred hands the buffer back at exit: accepted.
func UseDeferred() int {
	buf := pool.Get().(*Buf)
	defer pool.Put(buf)
	return len(buf.b)
}

// UseAfterPut touches the buffer after the pool owns it again: finding.
func UseAfterPut() int {
	buf := pool.Get().(*Buf)
	pool.Put(buf)
	return len(buf.b)
}

// Recycle reassigns after the handoff, installing a fresh value:
// accepted.
func Recycle() *Buf {
	buf := pool.Get().(*Buf)
	pool.Put(buf)
	buf = new(Buf)
	return buf
}

// SendThenTouch mutates the buffer after sending it away: finding.
func SendThenTouch(ch chan *Buf) {
	buf := new(Buf)
	ch <- buf
	buf.b = nil
}

// SwapThenRead reads the buffer after publishing it by Swap: finding.
func SwapThenRead(slot *atomic.Pointer[Buf]) []byte {
	buf := new(Buf)
	old := slot.Swap(buf)
	_ = old
	return buf.b
}

// retire is an annotated handoff sink.
//
//predlint:handoff
func retire(b *Buf) { _ = b }

// RetireThenUse reuses the buffer after the annotated handoff: finding.
func RetireThenUse() int {
	buf := new(Buf)
	retire(buf)
	return len(buf.b)
}

// MaybeRetire hands off only on a terminating branch, so the tail use is
// clean: accepted.
func MaybeRetire(done bool) *Buf {
	buf := new(Buf)
	if done {
		retire(buf)
		return nil
	}
	return buf
}

// Peek keeps a deliberate read-after-put for the suppression
// round-trip.
func Peek() int {
	buf := pool.Get().(*Buf)
	pool.Put(buf)
	//predlint:ignore goroutineown fixture exercises the goroutineown suppression round-trip
	return cap(buf.b)
}

// Quiet carries a dead suppression: nothing here panics, so the ignore
// suppresses nothing and staleignore flags it.
//
//predlint:ignore panicfree fixture stale suppression for the staleignore fixture
func Quiet() {}

// NoReason carries an ignore with no reason string (also dead).
//
//predlint:ignore exhaustive
func NoReason() {}

// Typo carries an ignore naming a check that does not exist.
//
//predlint:ignore frobcheck fixture names an unknown check
func Typo() {}

func dangling() {
	//predlint:owned
	//predlint:guardedby mu
	//predlint:hotpath
	//predlint:frobnicate
	//predlint:ignore
	x := 0
	_ = x
}
