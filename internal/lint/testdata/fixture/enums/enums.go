// Package enums declares the fixture enum for the exhaustive check.
package enums

// Mode is the fixture enum.
type Mode int

// Mode constants.
const (
	A Mode = iota
	B
	C
)
