// Package obsuse misuses obs handles outside the obs package.
package obsuse

import "fixture/obs"

// Read accesses a handle field directly (flagged).
func Read(c *obs.Counter) int64 {
	return c.N
}

// Make constructs a handle literal (flagged).
func Make() *obs.Counter {
	return &obs.Counter{}
}

// Count uses the nil-safe method (not flagged).
func Count(c *obs.Counter) int64 {
	return c.Value()
}
