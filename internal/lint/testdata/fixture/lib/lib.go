// Package lib exercises the panicfree check.
package lib

import "log"

// Explode panics (flagged).
func Explode() {
	panic("boom")
}

// Die calls log.Fatal (flagged).
func Die() {
	log.Fatal("dead")
}

// Guard panics under a suppression comment (counted as suppressed).
func Guard() {
	//predlint:ignore panicfree fixture invariant
	panic("invariant")
}
