package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkGuardedBy enforces //predlint:guardedby annotations: a struct
// field documented with
//
//	pending int //predlint:guardedby mu
//
// may only be read or written while the named sibling mutex is held on
// every path through the enclosing function. The analysis is
// intra-procedural lock-set tracking: Lock/RLock add the mutex (keyed by
// the receiver expression, so s.mu and t.mu are distinct), Unlock/RUnlock
// remove it, a deferred Unlock keeps it held to function exit, and
// branches merge by intersection (a path that returns or panics does not
// constrain the code after the branch). RLock suffices for reads; a write
// under RLock only is its own finding.
//
// Two deliberate holes keep the check usable:
//
//   - accesses through function-local variables are exempt (the
//     pre-publication construction pattern: build the value, then hand it
//     to the world);
//   - goroutine bodies and non-immediate function literals start with an
//     empty lock set — they run later, under whatever locks they take
//     themselves. A deferred literal is analyzed with the lock set at the
//     defer statement, matching the lock-then-defer-cleanup idiom.
type guardInfo struct {
	mutex string // sibling field name
	rw    bool   // sibling is a sync.RWMutex
}

// lockSet maps a mutex key ("s.mu") to the strongest mode held on every
// path so far: lockRead (RLock) or lockWrite (Lock).
type lockSet map[string]int

const (
	lockRead  = 1
	lockWrite = 2
)

func (ls lockSet) clone() lockSet {
	out := make(lockSet, len(ls))
	for k, v := range ls {
		out[k] = v
	}
	return out
}

// intersect keeps only the locks held (at the weaker mode) in both sets.
func intersect(a, b lockSet) lockSet {
	out := lockSet{}
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb < va {
				out[k] = vb
			} else {
				out[k] = va
			}
		}
	}
	return out
}

func checkGuardedBy(c *Context) {
	guarded := c.collectGuarded()
	if len(guarded) == 0 {
		return
	}
	for _, pkg := range c.Pkgs {
		eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			if fd.Body == nil {
				return
			}
			w := &gbWalker{c: c, pkg: pkg, fn: fd, guarded: guarded}
			w.block(fd.Body.List, lockSet{})
		})
	}
}

// collectGuarded parses every //predlint:guardedby field annotation in
// the module, validates the named sibling mutex, and returns the guarded
// field objects. Invalid annotations (missing or non-mutex sibling) are
// bad-mutex findings; either way the annotation is consumed, so
// staleignore does not double-report it.
func (c *Context) collectGuarded() map[types.Object]guardInfo {
	out := map[types.Object]guardInfo{}
	for _, pkg := range c.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				for _, field := range st.Fields.List {
					text, pos := fieldDirective(field, guardedbyPrefix)
					if text == "" {
						continue
					}
					c.consume(pos)
					fields := strings.Fields(strings.TrimPrefix(text, guardedbyPrefix))
					if len(fields) != 1 {
						c.reportDirectivef("guardedby", "guardedby/bad-mutex", text, field.Pos(),
							"guardedby annotation needs exactly one mutex field name")
						continue
					}
					mutex := fields[0]
					rw, ok := siblingMutex(pkg, st, mutex)
					if !ok {
						c.reportDirectivef("guardedby", "guardedby/bad-mutex", text, field.Pos(),
							"guardedby names %s, which is not a sibling sync.Mutex or sync.RWMutex field", mutex)
						continue
					}
					for _, name := range field.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							out[obj] = guardInfo{mutex: mutex, rw: rw}
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// fieldDirective finds a directive with the given prefix in a struct
// field's doc group or trailing comment.
func fieldDirective(field *ast.Field, prefix string) (string, token.Pos) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, cmt := range cg.List {
			text := directiveText(cmt.Text)
			if text == prefix || strings.HasPrefix(text, prefix+" ") {
				return text, cmt.Pos()
			}
		}
	}
	return "", token.NoPos
}

// siblingMutex reports whether the struct has a field of the given name
// whose type is sync.Mutex or sync.RWMutex, and whether it is an RWMutex.
func siblingMutex(pkg *Package, st *ast.StructType, name string) (rw, ok bool) {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name != name {
				continue
			}
			obj := pkg.Info.Defs[n]
			if obj == nil {
				return false, false
			}
			named, isNamed := obj.Type().(*types.Named)
			if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
				return false, false
			}
			switch named.Obj().Name() {
			case "Mutex":
				return false, true
			case "RWMutex":
				return true, true
			}
			return false, false
		}
	}
	return false, false
}

// gbWalker interprets one function body, threading the lock set through
// the statement structure.
type gbWalker struct {
	c       *Context
	pkg     *Package
	fn      *ast.FuncDecl
	guarded map[types.Object]guardInfo
}

// block runs the statements in order; it returns the exit lock set and
// whether every path through the block terminates (return/panic/branch).
func (w *gbWalker) block(stmts []ast.Stmt, ls lockSet) (lockSet, bool) {
	for _, s := range stmts {
		var term bool
		ls, term = w.stmt(s, ls)
		if term {
			return ls, true
		}
	}
	return ls, false
}

func (w *gbWalker) stmt(s ast.Stmt, ls lockSet) (lockSet, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.scan(s.X, ls)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if isPanicCall(call) {
				return ls, true
			}
			w.applyLockOp(call, ls)
		}
		return ls, false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scan(e, ls)
		}
		for _, lhs := range s.Lhs {
			w.write(lhs, ls)
		}
		return ls, false
	case *ast.IncDecStmt:
		w.write(s.X, ls)
		return ls, false
	case *ast.DeferStmt:
		w.deferStmt(s, ls)
		return ls, false
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.scan(a, ls)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.block(fl.Body.List, lockSet{})
		}
		return ls, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scan(e, ls)
		}
		return ls, true
	case *ast.BranchStmt:
		return ls, true
	case *ast.BlockStmt:
		return w.block(s.List, ls)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, ls)
	case *ast.IfStmt:
		return w.ifStmt(s, ls)
	case *ast.ForStmt:
		return w.forStmt(s, ls)
	case *ast.RangeStmt:
		return w.rangeStmt(s, ls)
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls, _ = w.stmt(s.Init, ls)
		}
		if s.Tag != nil {
			w.scan(s.Tag, ls)
		}
		return w.clauses(s.Body.List, ls, hasDefaultClause(s.Body.List))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ls, _ = w.stmt(s.Init, ls)
		}
		ls, _ = w.stmt(s.Assign, ls)
		return w.clauses(s.Body.List, ls, hasDefaultClause(s.Body.List))
	case *ast.SelectStmt:
		// A select runs exactly one of its cases (blocking without a
		// default), so the merge is the intersection of the case exits
		// with no entry-state escape hatch.
		return w.selectStmt(s, ls)
	case *ast.SendStmt:
		w.scan(s.Chan, ls)
		w.scan(s.Value, ls)
		return ls, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scan(v, ls)
					}
				}
			}
		}
		return ls, false
	default:
		return ls, false
	}
}

func (w *gbWalker) ifStmt(s *ast.IfStmt, ls lockSet) (lockSet, bool) {
	if s.Init != nil {
		ls, _ = w.stmt(s.Init, ls)
	}
	w.scan(s.Cond, ls)
	thenOut, thenTerm := w.block(s.Body.List, ls.clone())
	elseOut, elseTerm := ls.clone(), false
	if s.Else != nil {
		elseOut, elseTerm = w.stmt(s.Else, ls.clone())
	}
	switch {
	case thenTerm && elseTerm:
		return ls, true
	case thenTerm:
		return elseOut, false
	case elseTerm:
		return thenOut, false
	default:
		return intersect(thenOut, elseOut), false
	}
}

func (w *gbWalker) forStmt(s *ast.ForStmt, ls lockSet) (lockSet, bool) {
	if s.Init != nil {
		ls, _ = w.stmt(s.Init, ls)
	}
	if s.Cond != nil {
		w.scan(s.Cond, ls)
	}
	bodyOut, _ := w.block(s.Body.List, ls.clone())
	if s.Post != nil {
		bodyOut, _ = w.stmt(s.Post, bodyOut)
	}
	// The body may run zero times, so the exit keeps only locks held both
	// on entry and at the end of an iteration. An infinite loop with no
	// condition and no break would terminate the path, but detecting
	// breaks is not worth the precision here.
	return intersect(ls, bodyOut), false
}

func (w *gbWalker) rangeStmt(s *ast.RangeStmt, ls lockSet) (lockSet, bool) {
	w.scan(s.X, ls)
	bodyOut, _ := w.block(s.Body.List, ls.clone())
	return intersect(ls, bodyOut), false
}

// clauses merges switch/type-switch case bodies: intersection of the
// non-terminating exits, plus the entry state when there is no default
// (the switch may fall through untouched).
func (w *gbWalker) clauses(list []ast.Stmt, ls lockSet, hasDefault bool) (lockSet, bool) {
	var outs []lockSet
	for _, cs := range list {
		clause, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range clause.List {
			w.scan(e, ls)
		}
		out, term := w.block(clause.Body, ls.clone())
		if !term {
			outs = append(outs, out)
		}
	}
	if !hasDefault {
		outs = append(outs, ls)
	}
	return mergeOuts(outs, ls)
}

func (w *gbWalker) selectStmt(s *ast.SelectStmt, ls lockSet) (lockSet, bool) {
	var outs []lockSet
	for _, cs := range s.Body.List {
		comm, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		st := ls.clone()
		if comm.Comm != nil {
			st, _ = w.stmt(comm.Comm, st)
		}
		out, term := w.block(comm.Body, st)
		if !term {
			outs = append(outs, out)
		}
	}
	return mergeOuts(outs, ls)
}

// mergeOuts intersects the surviving branch exits; no survivors means
// every path terminated.
func mergeOuts(outs []lockSet, entry lockSet) (lockSet, bool) {
	if len(outs) == 0 {
		return entry, true
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = intersect(merged, o)
	}
	return merged, false
}

func hasDefaultClause(list []ast.Stmt) bool {
	for _, cs := range list {
		if clause, ok := cs.(*ast.CaseClause); ok && clause.List == nil {
			return true
		}
	}
	return false
}

// deferStmt handles defer: a deferred Unlock keeps the lock held to
// function exit (no lock-set change); a deferred function literal runs
// with the locks held at the defer site.
func (w *gbWalker) deferStmt(s *ast.DeferStmt, ls lockSet) {
	for _, a := range s.Call.Args {
		w.scan(a, ls)
	}
	if key, op := w.lockOp(s.Call); key != "" {
		_ = op // deferred Unlock/RUnlock: held until exit; deferred Lock is nonsense, ignore both
		return
	}
	if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
		w.block(fl.Body.List, ls.clone())
	}
}

// scan walks an expression for guarded-field reads, nested lock ops in
// immediately-invoked literals, and function literals.
func (w *gbWalker) scan(e ast.Expr, ls lockSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Non-immediate literal: runs later under its own locks.
			w.block(n.Body.List, lockSet{})
			return false
		case *ast.CallExpr:
			if fl, ok := n.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal runs here, under ls.
				for _, a := range n.Args {
					w.scan(a, ls)
				}
				w.block(fl.Body.List, ls.clone())
				return false
			}
		case *ast.CompositeLit:
			// Keyed struct literals name fields without accessing a live
			// value; element expressions still need scanning.
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					w.scan(kv.Value, ls)
				} else {
					w.scan(el, ls)
				}
			}
			return false
		case *ast.SelectorExpr:
			w.access(n, false, ls)
		}
		return true
	})
}

// write records a write access to the assignment target, unwrapping
// parens and indexes (writing s.m[k] mutates the guarded map) but not
// stars (writing *s.p mutates the pointee, reading the field).
func (w *gbWalker) write(lhs ast.Expr, ls lockSet) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			w.scan(e.Index, ls)
			lhs = e.X
		case *ast.SelectorExpr:
			w.access(e, true, ls)
			w.scan(e.X, ls)
			return
		default:
			w.scan(lhs, ls)
			return
		}
	}
}

// access reports a guarded-field access made without the guard held.
func (w *gbWalker) access(sel *ast.SelectorExpr, isWrite bool, ls lockSet) {
	selection, ok := w.pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	info, guarded := w.guarded[selection.Obj()]
	if !guarded || w.localBase(sel.X) {
		return
	}
	key := types.ExprString(sel.X) + "." + info.mutex
	mode := ls[key]
	field := selection.Obj().Name()
	switch {
	case mode == 0 && isWrite:
		w.c.reportf("guardedby", "guardedby/unguarded-write", sel.Sel.Pos(),
			"write to %s without holding %s (guarded by //predlint:guardedby %s)", field, key, info.mutex)
	case mode == 0:
		w.c.reportf("guardedby", "guardedby/unguarded-read", sel.Sel.Pos(),
			"read of %s without holding %s (guarded by //predlint:guardedby %s)", field, key, info.mutex)
	case mode == lockRead && isWrite:
		w.c.reportf("guardedby", "guardedby/rlock-write", sel.Sel.Pos(),
			"write to %s while %s is only read-locked", field, key)
	}
}

// localBase reports whether the access base bottoms out in a variable
// declared inside this function body — the pre-publication construction
// exemption: a value built locally is not yet shared.
func (w *gbWalker) localBase(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			return false
		case *ast.Ident:
			obj := w.pkg.Info.Uses[x]
			if obj == nil {
				return false
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return false
			}
			body := w.fn.Body
			return obj.Pos() >= body.Pos() && obj.Pos() < body.End()
		default:
			return false
		}
	}
}

// applyLockOp mutates the lock set for a direct mu.Lock()-style call.
func (w *gbWalker) applyLockOp(call *ast.CallExpr, ls lockSet) {
	key, op := w.lockOp(call)
	if key == "" {
		return
	}
	switch op {
	case "Lock":
		ls[key] = lockWrite
	case "RLock":
		if ls[key] < lockRead {
			ls[key] = lockRead
		}
	case "Unlock", "RUnlock":
		delete(ls, key)
	}
}

// lockOp recognises a call as mutex Lock/Unlock/RLock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the receiver key and the method.
func (w *gbWalker) lockOp(call *ast.CallExpr) (key, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	tv, ok := w.pkg.Info.Types[sel.X]
	if !ok {
		return "", ""
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", ""
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

// isPanicCall recognises a direct call to the panic builtin.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
