package lint

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureConfig retargets the checks at the small module under
// testdata/fixture, which packs one violation (and one accepted pattern)
// per check into a handful of tiny packages.
func fixtureConfig(t *testing.T) *Config {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	return &Config{
		Root:                 root,
		ModulePath:           "fixture",
		DeterministicPkgs:    []string{"fixture/det"},
		DeterminismSkipFiles: []string{"bench.go"},
		ClockAllowlist:       map[string]bool{"fixture/det.AllowedClock": true},
		ObsPkg:               "fixture/obs",
		ObsHandleTypes:       []string{"Counter"},
		LibraryPrefixes:      []string{"fixture/"},
		EnumTypes:            []string{"fixture/enums.Mode"},
		RequiredHotpaths: []string{
			"fixture/hot.Sum",          // annotated: satisfied
			"fixture/hot.Cold",         // exists but unannotated: finding
			"fixture/hot.event.label",  // unannotated method: finding
			"fixture/hot.Missing",      // no such function: finding
			"fixture/nosuchpkg.Kernel", // no such package: finding
		},
	}
}

func runFixture(t *testing.T, checks ...string) Result {
	t.Helper()
	cfg := fixtureConfig(t)
	cfg.Checks = checks
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFixtureGolden pins the full findings list — every check firing on
// its fixture violation, none firing on the accepted patterns — against
// testdata/findings.golden (regenerate with go test -run Golden -update).
func TestFixtureGolden(t *testing.T) {
	res := runFixture(t)
	var sb strings.Builder
	for _, f := range res.Findings {
		sb.WriteString(f.String())
		sb.WriteString("\n")
	}
	got := sb.String()
	golden := filepath.Join("testdata", "findings.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("findings diverge from golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFixtureSuppression: the four //predlint:ignore sites (det.Quiet,
// lib.Guard, conc.Racy, own.Peek) are counted as suppressed and absent
// from the findings.
func TestFixtureSuppression(t *testing.T) {
	res := runFixture(t)
	if res.Suppressed != 4 {
		t.Errorf("suppressed = %d, want 4", res.Suppressed)
	}
	for _, f := range res.Findings {
		if strings.Contains(f.Message, "Quiet") || f.File == "lib/lib.go" && f.Line >= 17 {
			t.Errorf("suppressed site still reported: %s", f)
		}
	}
}

// TestFixtureCheckFilter: restricting cfg.Checks runs only the named
// check.
func TestFixtureCheckFilter(t *testing.T) {
	res := runFixture(t, "exhaustive")
	if len(res.Findings) == 0 {
		t.Fatal("exhaustive-only run found nothing")
	}
	for _, f := range res.Findings {
		if f.Check != "exhaustive" {
			t.Errorf("check filter leaked finding %s", f)
		}
	}
}

// TestEveryCheckFires: each registered check produces at least one
// fixture finding, so a check silently dying would fail here rather than
// only in the golden diff.
func TestEveryCheckFires(t *testing.T) {
	res := runFixture(t)
	fired := map[string]bool{}
	for _, f := range res.Findings {
		fired[f.Check] = true
	}
	for _, ch := range Checks() {
		if !fired[ch.Name] {
			t.Errorf("check %s produced no fixture finding", ch.Name)
		}
	}
}

// TestJSONShape pins the -json document: the field names the CI contract
// depends on, and one fully-populated finding.
func TestJSONShape(t *testing.T) {
	res := runFixture(t)
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"module", "packages", "findings", "suppressed"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("json document lacks %q", key)
		}
	}
	findings, ok := doc["findings"].([]interface{})
	if !ok || len(findings) == 0 {
		t.Fatalf("findings = %v", doc["findings"])
	}
	first, ok := findings[0].(map[string]interface{})
	if !ok {
		t.Fatalf("finding = %v", findings[0])
	}
	for _, key := range []string{"file", "line", "col", "check", "code", "message"} {
		if _, ok := first[key]; !ok {
			t.Errorf("finding lacks %q", key)
		}
	}
}

// TestJSONGolden pins the complete -json document against
// testdata/findings.json.golden: field names, code values, and the
// directive text riding on staleignore findings are all CI contract.
func TestJSONGolden(t *testing.T) {
	res := runFixture(t)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got := string(data) + "\n"
	golden := filepath.Join("testdata", "findings.json.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("json document diverges from golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFindingCodes: every finding carries a stable machine code prefixed
// by its check name, and directive text appears exactly on the findings
// that are about a directive.
func TestFindingCodes(t *testing.T) {
	res := runFixture(t)
	for _, f := range res.Findings {
		if f.Code == "" {
			t.Errorf("finding without code: %s", f)
			continue
		}
		if !strings.HasPrefix(f.Code, f.Check+"/") {
			t.Errorf("code %q does not extend check %q: %s", f.Code, f.Check, f)
		}
		if f.Check == "staleignore" && f.Directive == "" {
			t.Errorf("staleignore finding without directive text: %s", f)
		}
		if f.Check != "staleignore" && f.Check != "guardedby" && f.Directive != "" {
			t.Errorf("non-directive finding carries directive text: %s", f)
		}
	}
}

// TestSelfClean runs the full default configuration over this repository
// itself: predlint must pass on its own module — including internal/lint
// — and staleignore must report zero dead directives on the tree. This is
// the test behind `make lint-self`.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(root)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		t.Errorf("module is not self-clean: %s", f)
	}
}

// TestFindingsNeverNil: a clean subset run still marshals findings as []
// not null.
func TestFindingsNeverNil(t *testing.T) {
	cfg := fixtureConfig(t)
	cfg.Checks = []string{"obsnil"}
	cfg.ObsHandleTypes = nil // nothing to flag
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"findings":null`) {
		t.Error("empty findings marshal as null, want []")
	}
}
