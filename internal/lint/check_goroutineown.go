package lint

import (
	"go/ast"
	"go/types"
)

// checkGoroutineOwn enforces single-owner handoff on types annotated
// //predlint:owned (the flight ring's Records, serve's pooled wireBufs):
// once a value of such a type is handed to another owner, the handing
// function may not touch it again. A handoff is
//
//   - a channel send of the value,
//   - Put on a sync.Pool,
//   - Swap on an atomic.Pointer (the ring's publication primitive),
//   - passing the value to a function annotated //predlint:handoff.
//
// The analysis is a forward poison walk per function: a handed-off
// variable is poisoned, any later use (including inside function
// literals, which may run after the new owner has recycled the value)
// is a finding, and reassigning the variable clears it. Branches merge
// by union — a handoff on either arm poisons the code after the branch —
// except arms that terminate (return/panic/break), which never reach it.
// Deferred statements are exempt: they run at function exit, which is
// the idiomatic place to hand a pooled value back.
func checkGoroutineOwn(c *Context) {
	owned := c.collectOwnedTypes()
	handoff := c.collectHandoffFuncs()
	if len(owned) == 0 {
		return
	}
	for _, pkg := range c.Pkgs {
		eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			if fd.Body == nil {
				return
			}
			w := &ownWalker{c: c, pkg: pkg, owned: owned, handoff: handoff}
			w.block(fd.Body.List, poisonSet{})
		})
	}
}

// collectOwnedTypes finds //predlint:owned type declarations.
func (c *Context) collectOwnedTypes() map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, pkg := range c.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					marked := false
					for _, cg := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
						if cg == nil {
							continue
						}
						for _, cmt := range cg.List {
							if directiveText(cmt.Text) == ownedMarker {
								marked = true
								c.consume(cmt.Pos())
							}
						}
					}
					if marked {
						if obj := pkg.Info.Defs[ts.Name]; obj != nil {
							out[obj] = true
						}
					}
				}
			}
		}
	}
	return out
}

// collectHandoffFuncs finds //predlint:handoff function declarations.
func (c *Context) collectHandoffFuncs() map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, pkg := range c.Pkgs {
		eachFunc(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
			if fd.Doc == nil {
				return
			}
			for _, cmt := range fd.Doc.List {
				if directiveText(cmt.Text) == handoffMarker {
					c.consume(cmt.Pos())
					if obj := pkg.Info.Defs[fd.Name]; obj != nil {
						out[obj] = true
					}
				}
			}
		})
	}
	return out
}

// poisonSet maps a handed-off variable to how and where it was handed
// off.
type poisonSet map[types.Object]poisonInfo

type poisonInfo struct {
	kind string
	line int
}

func (p poisonSet) clone() poisonSet {
	out := make(poisonSet, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

func union(a, b poisonSet) poisonSet {
	out := a.clone()
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

type ownWalker struct {
	c       *Context
	pkg     *Package
	owned   map[types.Object]bool
	handoff map[types.Object]bool
}

// isOwned reports whether t is (a pointer to) an annotated owned type.
func (w *ownWalker) isOwned(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && w.owned[named.Obj()]
}

// ownedIdent resolves an expression to the variable object it names, if
// it is a plain identifier of an owned type.
func (w *ownWalker) ownedIdent(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := w.pkg.Info.Uses[id]
	if obj == nil || !w.isOwned(obj.Type()) {
		return nil
	}
	return obj
}

func (w *ownWalker) block(stmts []ast.Stmt, p poisonSet) (poisonSet, bool) {
	for _, s := range stmts {
		var term bool
		p, term = w.stmt(s, p)
		if term {
			return p, true
		}
	}
	return p, false
}

func (w *ownWalker) stmt(s ast.Stmt, p poisonSet) (poisonSet, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.handleExprs(p, s.X)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(call) {
			return p, true
		}
		return p, false
	case *ast.AssignStmt:
		w.handleExprs(p, s.Rhs...)
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				// Reassignment installs a fresh value: the variable no
				// longer aliases the handed-off one.
				if obj := w.pkg.Info.Defs[id]; obj != nil {
					delete(p, obj)
				} else if obj := w.pkg.Info.Uses[id]; obj != nil {
					delete(p, obj)
				}
				continue
			}
			w.handleExprs(p, lhs)
		}
		return p, false
	case *ast.IncDecStmt:
		w.handleExprs(p, s.X)
		return p, false
	case *ast.SendStmt:
		w.handleExprs(p, s.Chan)
		if obj := w.ownedIdent(s.Value); obj != nil {
			w.poison(p, s.Value, obj, "sent on a channel")
		} else {
			w.handleExprs(p, s.Value)
		}
		return p, false
	case *ast.DeferStmt:
		return p, false // runs at exit: the idiomatic handoff point
	case *ast.GoStmt:
		w.handleExprs(p, s.Call.Args...)
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.scanUses(fl.Body, p)
		}
		return p, false
	case *ast.ReturnStmt:
		w.handleExprs(p, s.Results...)
		return p, true
	case *ast.BranchStmt:
		return p, true
	case *ast.BlockStmt:
		return w.block(s.List, p)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, p)
	case *ast.IfStmt:
		if s.Init != nil {
			p, _ = w.stmt(s.Init, p)
		}
		w.handleExprs(p, s.Cond)
		thenOut, thenTerm := w.block(s.Body.List, p.clone())
		elseOut, elseTerm := p.clone(), false
		if s.Else != nil {
			elseOut, elseTerm = w.stmt(s.Else, p.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return p, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return union(thenOut, elseOut), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			p, _ = w.stmt(s.Init, p)
		}
		if s.Cond != nil {
			w.handleExprs(p, s.Cond)
		}
		bodyOut, _ := w.block(s.Body.List, p.clone())
		if s.Post != nil {
			bodyOut, _ = w.stmt(s.Post, bodyOut)
		}
		return union(p, bodyOut), false
	case *ast.RangeStmt:
		w.handleExprs(p, s.X)
		bodyOut, _ := w.block(s.Body.List, p.clone())
		return union(p, bodyOut), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			p, _ = w.stmt(s.Init, p)
		}
		if s.Tag != nil {
			w.handleExprs(p, s.Tag)
		}
		return w.clauses(s.Body.List, p)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			p, _ = w.stmt(s.Init, p)
		}
		p, _ = w.stmt(s.Assign, p)
		return w.clauses(s.Body.List, p)
	case *ast.SelectStmt:
		var outs []poisonSet
		for _, cs := range s.Body.List {
			comm, ok := cs.(*ast.CommClause)
			if !ok {
				continue
			}
			st := p.clone()
			if comm.Comm != nil {
				st, _ = w.stmt(comm.Comm, st)
			}
			out, term := w.block(comm.Body, st)
			if !term {
				outs = append(outs, out)
			}
		}
		if len(outs) == 0 && len(s.Body.List) > 0 {
			return p, true
		}
		merged := p
		for _, o := range outs {
			merged = union(merged, o)
		}
		return merged, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.handleExprs(p, v)
					}
				}
			}
		}
		return p, false
	default:
		return p, false
	}
}

func (w *ownWalker) clauses(list []ast.Stmt, p poisonSet) (poisonSet, bool) {
	merged := p
	allTerm := len(list) > 0
	for _, cs := range list {
		clause, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range clause.List {
			w.handleExprs(p, e)
		}
		out, term := w.block(clause.Body, p.clone())
		if !term {
			merged = union(merged, out)
			allTerm = false
		}
	}
	// Without a default the switch can fall through with the entry state,
	// so even all-terminating cases do not terminate the statement.
	if allTerm && hasDefaultClause(list) {
		return p, true
	}
	return merged, false
}

// handleExprs is the per-statement core: report uses of poisoned
// variables (skipping the arguments of this statement's own handoffs),
// then apply the new handoffs to the poison set.
func (w *ownWalker) handleExprs(p poisonSet, exprs ...ast.Expr) {
	type handoffArg struct {
		id   *ast.Ident
		obj  types.Object
		kind string
	}
	var handoffs []handoffArg
	skip := map[*ast.Ident]bool{}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // handoffs inside a literal belong to its own run
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind := w.handoffKind(call)
			if kind == "" {
				return true
			}
			for _, a := range call.Args {
				id, ok := a.(*ast.Ident)
				if !ok {
					continue
				}
				if obj := w.ownedIdent(id); obj != nil {
					handoffs = append(handoffs, handoffArg{id, obj, kind})
					skip[id] = true
				}
			}
			return true
		})
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		w.scanUsesExpr(e, p, skip)
	}
	for _, h := range handoffs {
		w.poison(p, h.id, h.obj, h.kind)
	}
}

// handoffKind classifies a call as a handoff: sync.Pool.Put,
// atomic.Pointer.Swap, or a //predlint:handoff function.
func (w *ownWalker) handoffKind(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj := w.pkg.Info.Uses[fun]; obj != nil && w.handoff[obj] {
			return "passed to handoff function " + fun.Name
		}
	case *ast.SelectorExpr:
		if obj := w.pkg.Info.Uses[fun.Sel]; obj != nil && w.handoff[obj] {
			return "passed to handoff function " + fun.Sel.Name
		}
		tv, ok := w.pkg.Info.Types[fun.X]
		if !ok {
			return ""
		}
		t := tv.Type
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		pkgPath, typeName := named.Obj().Pkg().Path(), named.Obj().Name()
		if fun.Sel.Name == "Put" && pkgPath == "sync" && typeName == "Pool" {
			return "Put back to its pool"
		}
		if fun.Sel.Name == "Swap" && pkgPath == "sync/atomic" {
			return "swapped into " + types.ExprString(fun.X)
		}
	}
	return ""
}

func (w *ownWalker) poison(p poisonSet, at ast.Node, obj types.Object, kind string) {
	if _, already := p[obj]; already {
		return
	}
	p[obj] = poisonInfo{kind: kind, line: w.c.Fset.Position(at.Pos()).Line}
}

// scanUses reports every identifier use of a poisoned variable in the
// subtree.
func (w *ownWalker) scanUses(n ast.Node, p poisonSet) {
	w.scanUsesExpr(n, p, nil)
}

func (w *ownWalker) scanUsesExpr(n ast.Node, p poisonSet, skip map[*ast.Ident]bool) {
	if len(p) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || skip[id] {
			return true
		}
		obj := w.pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		if info, poisoned := p[obj]; poisoned {
			w.c.reportf("goroutineown", "goroutineown/use-after-handoff", id.Pos(),
				"%s used after being %s on line %d: the new owner may already be mutating or recycling it",
				id.Name, info.kind, info.line)
		}
		return true
	})
}
