package lint

import (
	"go/ast"
	"strings"
)

// checkPanicFree flags panic() and log.Fatal* in library packages
// (import paths under Config.LibraryPrefixes): libraries report failures
// as error returns so callers choose the policy; only main packages may
// decide to die. Invariant panics that guard provably-unreachable states
// stay allowed via //predlint:ignore panicfree annotations, which keep
// every such decision visible at the site.
func checkPanicFree(c *Context) {
	for _, pkg := range c.Pkgs {
		library := false
		for _, prefix := range c.Cfg.LibraryPrefixes {
			if strings.HasPrefix(pkg.Path, prefix) {
				library = true
				break
			}
		}
		if !library || pkg.Name == "main" {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					c.reportf("panicfree", "panicfree/panic", call.Pos(),
						"panic in library package %s: return an error instead", pkg.Name)
					return true
				}
				if path, name := pkgFunc(pkg.Info, call); path == "log" && strings.HasPrefix(name, "Fatal") {
					c.reportf("panicfree", "panicfree/fatal", call.Pos(),
						"log.%s in library package %s: return an error instead", name, pkg.Name)
				}
				return true
			})
		}
	}
}
