// Package lint is predlint: a project-specific static-analysis pass that
// makes the reproduction's core contracts mechanical. The sweep engine
// promises byte-identical output at any worker count with observability on
// or off; nothing but convention stops a future change from slipping
// time.Now, global math/rand, or an unordered map iteration into an output
// path. predlint turns those conventions into checks that run as part of
// `make check`:
//
//   - determinism: no wall-clock reads, global randomness, environment
//     reads, or order-sensitive map iteration in the deterministic packages;
//   - hotpath: functions annotated //predlint:hotpath stay free of
//     per-event allocation and fmt traffic;
//   - obsnil: obs handles are used only through their nil-safe methods
//     outside internal/obs;
//   - panicfree: library packages return errors instead of panicking;
//   - exhaustive: switches over the taxonomy enums cover every constant;
//   - guardedby: fields annotated //predlint:guardedby mu are only
//     touched while that mutex is held on every path through the function;
//   - atomiconly: sync/atomic-typed fields (and //predlint:atomic
//     annotations) are never plain-accessed, copied, or address-escaped;
//   - goroutineown: //predlint:owned values are not touched after being
//     handed off to another goroutine (send, pool Put, pointer Swap);
//   - staleignore: every predlint directive still earns its keep — dead
//     ignores and dangling annotations are findings.
//
// Every finding is suppressible at the site with a
// "//predlint:ignore <check> reason" comment, so intentional exceptions
// are visible and greppable — and the staleignore check flags any such
// comment the moment it stops suppressing anything, so the exception list
// cannot rot. The analyzer uses only the standard library
// (go/parser, go/ast, go/types): the module stays dependency-free.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic: a location, the check that fired, a stable
// machine code, and a message. File paths are relative to the module root
// so output is stable across checkouts. Code is "check/kind" — the part
// CI annotations key on, guaranteed not to change when messages are
// reworded. Directive carries the verbatim comment text when the finding
// is about a directive itself (the staleignore check).
type Finding struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Check     string `json:"check"`
	Code      string `json:"code"`
	Message   string `json:"message"`
	Directive string `json:"directive,omitempty"`
}

// String renders the finding in the classic file:line:col form, keyed by
// the stable code when the check set one.
func (f Finding) String() string {
	label := f.Code
	if label == "" {
		label = f.Check
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, label, f.Message)
}

// Result is the machine-readable outcome of a lint run (the -json
// document).
type Result struct {
	Module     string    `json:"module"`
	Packages   int       `json:"packages"`
	Findings   []Finding `json:"findings"`
	Suppressed int       `json:"suppressed"`
}

// Config parameterises a run. Every project-specific list lives here so
// the checks themselves stay generic and the fixture tests can retarget
// them at small test modules.
type Config struct {
	// Root is the module root directory; ModulePath its import path
	// (read from go.mod by LoadConfig).
	Root       string
	ModulePath string

	// DeterministicPkgs are the import paths subject to the determinism
	// check — the packages whose results must be byte-identical run to
	// run.
	DeterministicPkgs []string
	// DeterminismSkipFiles are file base names exempt from the
	// determinism check (benchmark probes legitimately read the clock).
	DeterminismSkipFiles []string
	// ClockAllowlist lists "importpath.FuncName" entries allowed to call
	// time.Now/time.Since inside deterministic packages: the sweep
	// engine's observability timing, which feeds metrics but never
	// results.
	ClockAllowlist map[string]bool

	// ObsPkg is the observability package; ObsHandleTypes its nil-safe
	// handle types, which must not have fields accessed (or literals
	// constructed) outside ObsPkg.
	ObsPkg         string
	ObsHandleTypes []string

	// LibraryPrefixes are import-path prefixes counted as library code
	// for the panicfree check (command and example mains are exempt).
	LibraryPrefixes []string

	// EnumTypes are "importpath.TypeName" entries whose switch
	// statements must either cover every declared constant or carry a
	// default case.
	EnumTypes []string

	// RequiredHotpaths are "importpath.FuncName" (or
	// "importpath.Receiver.Method") entries that MUST carry the
	// //predlint:hotpath annotation: the serving and evaluation kernels
	// whose allocation discipline the throughput floors rest on. A
	// missing function or a stripped annotation is a finding, so the
	// hot-path guarantee cannot silently rot out of the lint's sight.
	RequiredHotpaths []string

	// Checks restricts the run to the named checks; empty means all.
	Checks []string
}

// DefaultConfig returns the project configuration for the cohpredict
// module rooted at root.
func DefaultConfig(root, modulePath string) *Config {
	internal := func(names ...string) []string {
		out := make([]string, len(names))
		for i, n := range names {
			out[i] = modulePath + "/internal/" + n
		}
		return out
	}
	return &Config{
		Root:       root,
		ModulePath: modulePath,
		DeterministicPkgs: internal("bitmap", "trace", "cache", "machine", "eval",
			"search", "metrics", "workload", "topology", "online", "cosmos",
			"report", "experiments", "serve", "fault", "client", "flight",
			"traffic", "cluster"),
		DeterminismSkipFiles: []string{"bench.go"},
		ClockAllowlist: map[string]bool{
			// The sweep engine times tasks and worker busy-ns for the obs
			// registry; the readings feed metrics only, never results.
			modulePath + "/internal/search.EvaluateSchemesObserved": true,
			modulePath + "/internal/search.runIndexTrace":           true,
			// Suite.evaluate wraps every sweep in a wall-time SweepRecord.
			modulePath + "/internal/experiments.evaluate": true,
			// flight.Nanos is the serving layer's single clock: every stage
			// stamp and busy-ns reading in serve derives from it, and the
			// readings feed metrics and trace records only, never results.
			modulePath + "/internal/flight.Nanos": true,
		},
		ObsPkg:          modulePath + "/internal/obs",
		ObsHandleTypes:  []string{"Counter", "Gauge", "Histogram", "Registry"},
		LibraryPrefixes: []string{modulePath + "/internal/"},
		EnumTypes: []string{
			modulePath + "/internal/core.Function",
			modulePath + "/internal/core.UpdateMode",
		},
		RequiredHotpaths: []string{
			// The offline evaluation kernel and its canonical varint pair.
			modulePath + "/internal/eval.Apply",
			modulePath + "/internal/eval.Engine.Step",
			modulePath + "/internal/eval.Uvarint",
			modulePath + "/internal/eval.UvarintLen",
			// The serve path: shard worker loop and the COHWIRE1 codec
			// kernels the allocation-free binary transport is built from.
			modulePath + "/internal/serve.shard.process",
			modulePath + "/internal/serve.AppendWireBatch",
			modulePath + "/internal/serve.AppendWireEvents",
			modulePath + "/internal/serve.AppendWireReply",
			modulePath + "/internal/serve.DecodeWireBatchInto",
			modulePath + "/internal/serve.DecodeWireReplyInto",
			// The flight recorder's stamping kernels run inside the shard
			// micro-batch loop: atomics only, zero allocation.
			modulePath + "/internal/flight.Record.NoteBatch",
			modulePath + "/internal/flight.Record.MarkFault",
			// The COHTRACE1 recording kernels run on the serve layer's
			// accepted path (once per trained batch): append-only into one
			// warmed buffer, zero steady-state allocation.
			modulePath + "/internal/traffic.Recorder.RecordEvents",
			modulePath + "/internal/traffic.appendUvarint",
			modulePath + "/internal/traffic.appendTraceEvent",
			modulePath + "/internal/traffic.appendRequestRecord",
		},
	}
}

// Check is one registered analysis pass.
type Check struct {
	Name string
	Desc string
	run  func(*Context)
}

// Checks returns the registered checks in execution order.
func Checks() []Check {
	return []Check{
		{
			Name: "determinism",
			Desc: "no time.Now/time.Since, global math/rand, os.Getenv, or order-sensitive map iteration in the deterministic packages",
			run:  checkDeterminism,
		},
		{
			Name: "hotpath",
			Desc: "functions marked //predlint:hotpath avoid per-event heap allocation, fmt calls, loop-variable captures, interface conversions, and unpreallocated appends; the configured required kernels must carry the mark",
			run:  checkHotpath,
		},
		{
			Name: "obsnil",
			Desc: "obs handles (Counter, Gauge, Histogram, Registry) are used only through their nil-safe methods outside internal/obs",
			run:  checkObsNil,
		},
		{
			Name: "panicfree",
			Desc: "library packages return errors instead of calling panic or log.Fatal",
			run:  checkPanicFree,
		},
		{
			Name: "exhaustive",
			Desc: "switches over the taxonomy enum types cover every constant or carry a default",
			run:  checkExhaustive,
		},
		{
			Name: "guardedby",
			Desc: "fields annotated //predlint:guardedby mu are only touched while that mutex is held on every path (RLock suffices for reads)",
			run:  checkGuardedBy,
		},
		{
			Name: "atomiconly",
			Desc: "sync/atomic-typed fields and fields annotated //predlint:atomic are never plain-accessed, copied by value, or address-escaped",
			run:  checkAtomicOnly,
		},
		{
			Name: "goroutineown",
			Desc: "values of types annotated //predlint:owned are not touched after being handed off (sent, pooled, swapped, or passed to a //predlint:handoff function)",
			run:  checkGoroutineOwn,
		},
		// staleignore must run last: it judges which ignore directives and
		// annotations the earlier checks actually consumed this run.
		{
			Name: "staleignore",
			Desc: "every //predlint: directive still suppresses or matches something; dead ignores and dangling annotations are findings",
			run:  checkStaleIgnore,
		},
	}
}

// Context is the shared state a check runs against.
type Context struct {
	Cfg  *Config
	Fset *token.FileSet
	Pkgs []*Package

	dirs     *directives
	findings []Finding
	dropped  int

	// ran records which checks executed this run; staleignore only judges
	// directives whose checks actually had the chance to consume them.
	ran map[string]bool
	// consumed holds the comment positions of annotation directives
	// (guardedby/atomic/owned/handoff) that a check matched to a
	// declaration; anything left over is dangling.
	consumed map[token.Pos]bool
}

// consume marks an annotation comment as matched by a check.
func (c *Context) consume(pos token.Pos) {
	c.consumed[pos] = true
}

// reportf records a finding at pos unless a //predlint:ignore comment
// suppresses it. code is the stable machine code ("check/kind").
func (c *Context) reportf(check, code string, pos token.Pos, format string, args ...interface{}) {
	c.report(check, code, "", pos, format, args...)
}

// reportDirectivef is reportf for findings about a directive comment
// itself; the verbatim directive text rides along in the finding.
func (c *Context) reportDirectivef(check, code, directive string, pos token.Pos, format string, args ...interface{}) {
	c.report(check, code, directive, pos, format, args...)
}

func (c *Context) report(check, code, directive string, pos token.Pos, format string, args ...interface{}) {
	p := c.Fset.Position(pos)
	file := relPath(c.Cfg.Root, p.Filename)
	if c.dirs.suppressed(file, p.Line, check) {
		c.dropped++
		return
	}
	c.findings = append(c.findings, Finding{
		File:      file,
		Line:      p.Line,
		Col:       p.Column,
		Check:     check,
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		Directive: directive,
	})
}

func relPath(root, file string) string {
	prefix := root
	if !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	return strings.TrimPrefix(file, prefix)
}

// Run loads the module under cfg.Root and executes the configured checks,
// returning every unsuppressed finding sorted by position.
func Run(cfg *Config) (Result, error) {
	fset := token.NewFileSet()
	pkgs, err := loadModule(cfg, fset)
	if err != nil {
		return Result{}, err
	}
	ctx := &Context{
		Cfg: cfg, Fset: fset, Pkgs: pkgs,
		dirs:     collectDirectives(cfg.Root, fset, pkgs),
		ran:      map[string]bool{},
		consumed: map[token.Pos]bool{},
	}
	enabled := map[string]bool{}
	for _, name := range cfg.Checks {
		enabled[name] = true
	}
	for _, ch := range Checks() {
		if len(enabled) > 0 && !enabled[ch.Name] {
			continue
		}
		ctx.ran[ch.Name] = true
		ch.run(ctx)
	}
	sort.Slice(ctx.findings, func(i, j int) bool {
		a, b := ctx.findings[i], ctx.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	if ctx.findings == nil {
		ctx.findings = []Finding{}
	}
	return Result{
		Module:     cfg.ModulePath,
		Packages:   len(pkgs),
		Findings:   ctx.findings,
		Suppressed: ctx.dropped,
	}, nil
}

// pkgByPath returns the loaded package with the given import path, or nil.
func (c *Context) pkgByPath(path string) *Package {
	for _, p := range c.Pkgs {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// eachFunc walks every function declaration of the package, calling fn
// with the declaration and its enclosing file.
func eachFunc(p *Package, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				fn(f, fd)
			}
		}
	}
}
