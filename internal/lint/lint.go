// Package lint is predlint: a project-specific static-analysis pass that
// makes the reproduction's core contracts mechanical. The sweep engine
// promises byte-identical output at any worker count with observability on
// or off; nothing but convention stops a future change from slipping
// time.Now, global math/rand, or an unordered map iteration into an output
// path. predlint turns those conventions into checks that run as part of
// `make check`:
//
//   - determinism: no wall-clock reads, global randomness, environment
//     reads, or order-sensitive map iteration in the deterministic packages;
//   - hotpath: functions annotated //predlint:hotpath stay free of
//     per-event allocation and fmt traffic;
//   - obsnil: obs handles are used only through their nil-safe methods
//     outside internal/obs;
//   - panicfree: library packages return errors instead of panicking;
//   - exhaustive: switches over the taxonomy enums cover every constant.
//
// Every finding is suppressible at the site with a
// "//predlint:ignore <check> reason" comment, so intentional exceptions
// are visible and greppable. The analyzer uses only the standard library
// (go/parser, go/ast, go/types): the module stays dependency-free.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic: a location, the check that fired, and a
// message. File paths are relative to the module root so output is stable
// across checkouts.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the finding in the classic file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Result is the machine-readable outcome of a lint run (the -json
// document).
type Result struct {
	Module     string    `json:"module"`
	Packages   int       `json:"packages"`
	Findings   []Finding `json:"findings"`
	Suppressed int       `json:"suppressed"`
}

// Config parameterises a run. Every project-specific list lives here so
// the checks themselves stay generic and the fixture tests can retarget
// them at small test modules.
type Config struct {
	// Root is the module root directory; ModulePath its import path
	// (read from go.mod by LoadConfig).
	Root       string
	ModulePath string

	// DeterministicPkgs are the import paths subject to the determinism
	// check — the packages whose results must be byte-identical run to
	// run.
	DeterministicPkgs []string
	// DeterminismSkipFiles are file base names exempt from the
	// determinism check (benchmark probes legitimately read the clock).
	DeterminismSkipFiles []string
	// ClockAllowlist lists "importpath.FuncName" entries allowed to call
	// time.Now/time.Since inside deterministic packages: the sweep
	// engine's observability timing, which feeds metrics but never
	// results.
	ClockAllowlist map[string]bool

	// ObsPkg is the observability package; ObsHandleTypes its nil-safe
	// handle types, which must not have fields accessed (or literals
	// constructed) outside ObsPkg.
	ObsPkg         string
	ObsHandleTypes []string

	// LibraryPrefixes are import-path prefixes counted as library code
	// for the panicfree check (command and example mains are exempt).
	LibraryPrefixes []string

	// EnumTypes are "importpath.TypeName" entries whose switch
	// statements must either cover every declared constant or carry a
	// default case.
	EnumTypes []string

	// RequiredHotpaths are "importpath.FuncName" (or
	// "importpath.Receiver.Method") entries that MUST carry the
	// //predlint:hotpath annotation: the serving and evaluation kernels
	// whose allocation discipline the throughput floors rest on. A
	// missing function or a stripped annotation is a finding, so the
	// hot-path guarantee cannot silently rot out of the lint's sight.
	RequiredHotpaths []string

	// Checks restricts the run to the named checks; empty means all.
	Checks []string
}

// DefaultConfig returns the project configuration for the cohpredict
// module rooted at root.
func DefaultConfig(root, modulePath string) *Config {
	internal := func(names ...string) []string {
		out := make([]string, len(names))
		for i, n := range names {
			out[i] = modulePath + "/internal/" + n
		}
		return out
	}
	return &Config{
		Root:       root,
		ModulePath: modulePath,
		DeterministicPkgs: internal("bitmap", "trace", "cache", "machine", "eval",
			"search", "metrics", "workload", "topology", "online", "cosmos",
			"report", "experiments", "serve", "fault", "client", "flight"),
		DeterminismSkipFiles: []string{"bench.go"},
		ClockAllowlist: map[string]bool{
			// The sweep engine times tasks and worker busy-ns for the obs
			// registry; the readings feed metrics only, never results.
			modulePath + "/internal/search.EvaluateSchemesObserved": true,
			modulePath + "/internal/search.runIndexTrace":           true,
			// Suite.evaluate wraps every sweep in a wall-time SweepRecord.
			modulePath + "/internal/experiments.evaluate": true,
			// flight.Nanos is the serving layer's single clock: every stage
			// stamp and busy-ns reading in serve derives from it, and the
			// readings feed metrics and trace records only, never results.
			modulePath + "/internal/flight.Nanos": true,
		},
		ObsPkg:          modulePath + "/internal/obs",
		ObsHandleTypes:  []string{"Counter", "Gauge", "Histogram", "Registry"},
		LibraryPrefixes: []string{modulePath + "/internal/"},
		EnumTypes: []string{
			modulePath + "/internal/core.Function",
			modulePath + "/internal/core.UpdateMode",
		},
		RequiredHotpaths: []string{
			// The offline evaluation kernel and its canonical varint pair.
			modulePath + "/internal/eval.Apply",
			modulePath + "/internal/eval.Engine.Step",
			modulePath + "/internal/eval.Uvarint",
			modulePath + "/internal/eval.UvarintLen",
			// The serve path: shard worker loop and the COHWIRE1 codec
			// kernels the allocation-free binary transport is built from.
			modulePath + "/internal/serve.shard.process",
			modulePath + "/internal/serve.AppendWireBatch",
			modulePath + "/internal/serve.AppendWireEvents",
			modulePath + "/internal/serve.AppendWireReply",
			modulePath + "/internal/serve.DecodeWireBatchInto",
			modulePath + "/internal/serve.DecodeWireReplyInto",
			// The flight recorder's stamping kernels run inside the shard
			// micro-batch loop: atomics only, zero allocation.
			modulePath + "/internal/flight.Record.NoteBatch",
			modulePath + "/internal/flight.Record.MarkFault",
		},
	}
}

// Check is one registered analysis pass.
type Check struct {
	Name string
	Desc string
	run  func(*Context)
}

// Checks returns the registered checks in execution order.
func Checks() []Check {
	return []Check{
		{
			Name: "determinism",
			Desc: "no time.Now/time.Since, global math/rand, os.Getenv, or order-sensitive map iteration in the deterministic packages",
			run:  checkDeterminism,
		},
		{
			Name: "hotpath",
			Desc: "functions marked //predlint:hotpath avoid per-event heap allocation, fmt calls, loop-variable captures, interface conversions, and unpreallocated appends; the configured required kernels must carry the mark",
			run:  checkHotpath,
		},
		{
			Name: "obsnil",
			Desc: "obs handles (Counter, Gauge, Histogram, Registry) are used only through their nil-safe methods outside internal/obs",
			run:  checkObsNil,
		},
		{
			Name: "panicfree",
			Desc: "library packages return errors instead of calling panic or log.Fatal",
			run:  checkPanicFree,
		},
		{
			Name: "exhaustive",
			Desc: "switches over the taxonomy enum types cover every constant or carry a default",
			run:  checkExhaustive,
		},
	}
}

// Context is the shared state a check runs against.
type Context struct {
	Cfg  *Config
	Fset *token.FileSet
	Pkgs []*Package

	dirs     *directives
	findings []Finding
	dropped  int
}

// reportf records a finding at pos unless a //predlint:ignore comment
// suppresses it.
func (c *Context) reportf(check string, pos token.Pos, format string, args ...interface{}) {
	p := c.Fset.Position(pos)
	file := relPath(c.Cfg.Root, p.Filename)
	if c.dirs.suppressed(file, p.Line, check) {
		c.dropped++
		return
	}
	c.findings = append(c.findings, Finding{
		File:    file,
		Line:    p.Line,
		Col:     p.Column,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

func relPath(root, file string) string {
	prefix := root
	if !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	return strings.TrimPrefix(file, prefix)
}

// Run loads the module under cfg.Root and executes the configured checks,
// returning every unsuppressed finding sorted by position.
func Run(cfg *Config) (Result, error) {
	fset := token.NewFileSet()
	pkgs, err := loadModule(cfg, fset)
	if err != nil {
		return Result{}, err
	}
	ctx := &Context{Cfg: cfg, Fset: fset, Pkgs: pkgs, dirs: collectDirectives(cfg.Root, fset, pkgs)}
	enabled := map[string]bool{}
	for _, name := range cfg.Checks {
		enabled[name] = true
	}
	for _, ch := range Checks() {
		if len(enabled) > 0 && !enabled[ch.Name] {
			continue
		}
		ch.run(ctx)
	}
	sort.Slice(ctx.findings, func(i, j int) bool {
		a, b := ctx.findings[i], ctx.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	if ctx.findings == nil {
		ctx.findings = []Finding{}
	}
	return Result{
		Module:     cfg.ModulePath,
		Packages:   len(pkgs),
		Findings:   ctx.findings,
		Suppressed: ctx.dropped,
	}, nil
}

// pkgByPath returns the loaded package with the given import path, or nil.
func (c *Context) pkgByPath(path string) *Package {
	for _, p := range c.Pkgs {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// eachFunc walks every function declaration of the package, calling fn
// with the declaration and its enclosing file.
func eachFunc(p *Package, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				fn(f, fd)
			}
		}
	}
}
