package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Name  string // package name
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadConfig reads go.mod under root and returns the project's default
// configuration.
func LoadConfig(root string) (*Config, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	return DefaultConfig(abs, modPath), nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// loader type-checks the module's packages from source, resolving
// module-internal imports itself and delegating the standard library to
// the stdlib source importer (no compiled export data is needed, so the
// analyzer works on a bare source tree).
type loader struct {
	cfg  *Config
	fset *token.FileSet
	dirs map[string]string // import path -> absolute dir
	pkgs map[string]*Package
	busy map[string]bool // cycle detection
	std  types.ImporterFrom
}

// loadModule parses and type-checks every non-test package under
// cfg.Root, returning them sorted by import path.
func loadModule(cfg *Config, fset *token.FileSet) ([]*Package, error) {
	l := &loader{
		cfg:  cfg,
		fset: fset,
		dirs: map[string]string{},
		pkgs: map[string]*Package{},
		busy: map[string]bool{},
	}
	srcImp, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	l.std = srcImp
	if err := l.discover(); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// discover maps every directory containing non-test Go files to its
// import path. testdata, hidden and underscore directories are skipped,
// following the go tool's rules.
func (l *loader) discover() error {
	return filepath.WalkDir(l.cfg.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.cfg.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		imp := l.cfg.ModulePath
		if path != l.cfg.Root {
			rel, err := filepath.Rel(l.cfg.Root, path)
			if err != nil {
				return err
			}
			imp += "/" + filepath.ToSlash(rel)
		}
		l.dirs[imp] = path
		return nil
	})
}

// load type-checks one module package (memoised), recursively loading its
// module-internal imports.
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("lint: unknown module package %s", path)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil && typeErr == nil {
		typeErr = err
	}
	if typeErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErr)
	}
	p := &Package{
		Path:  path,
		Dir:   dir,
		Name:  tpkg.Name(),
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.cfg.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from the source tree, everything else from the stdlib source importer.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.cfg.ModulePath || strings.HasPrefix(path, l.cfg.ModulePath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.cfg.Root, 0)
}
