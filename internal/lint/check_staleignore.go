package lint

import (
	"go/ast"
	"strings"
)

// checkStaleIgnore audits the directives themselves, so the suppression
// and annotation inventory cannot rot:
//
//   - an //predlint:ignore that suppressed nothing this run is dead and
//     must be deleted (judged only when every check it names actually
//     ran, so a filtered -checks run never misfires);
//   - an ignore without a reason string, or naming an unknown check, is
//     a finding — every exception stays explained and spellable;
//   - a guardedby/atomic/owned/handoff/hotpath marker that no check
//     matched to a declaration is dangling: it documents an invariant
//     nothing enforces;
//   - any other predlint: spelling is an unknown directive (usually a
//     typo that would otherwise silently enforce nothing).
//
// It must be registered last: it reads the used/consumed marks the other
// checks left behind. A deliberate keep is spelled
// "//predlint:ignore staleignore,<check> reason" — the record then
// suppresses its own dead finding, visibly.
func checkStaleIgnore(c *Context) {
	known := map[string]bool{"all": true}
	for _, ch := range Checks() {
		known[ch.Name] = true
	}
	allRan := true
	for _, ch := range Checks() {
		if !c.ran[ch.Name] {
			allRan = false
		}
	}

	for _, rec := range c.dirs.records {
		if rec.reason == "" {
			c.reportDirectivef("staleignore", "staleignore/no-reason", rec.text, rec.pos,
				"ignore directive has no reason: say why the exception is safe")
		}
		judgeable := true
		for name := range rec.checks {
			if !known[name] {
				c.reportDirectivef("staleignore", "staleignore/unknown-check", rec.text, rec.pos,
					"ignore directive names unknown check %q", name)
				judgeable = false
				continue
			}
			if name == "all" {
				judgeable = judgeable && allRan
			} else {
				judgeable = judgeable && c.ran[name]
			}
		}
		if judgeable && !rec.used {
			c.reportDirectivef("staleignore", "staleignore/dead", rec.text, rec.pos,
				"ignore directive suppresses nothing: delete it (or it will hide the next real finding here)")
		}
	}

	for _, pkg := range c.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, cmt := range cg.List {
					c.auditDirective(cmt)
				}
			}
		}
	}
}

// auditDirective classifies one predlint comment that is not a
// (well-formed) ignore: dangling annotations and unknown spellings.
func (c *Context) auditDirective(cmt *ast.Comment) {
	text := directiveText(cmt.Text)
	if text == "" {
		return
	}
	word := text
	if i := strings.IndexByte(word, ' '); i >= 0 {
		word = word[:i]
	}
	switch word {
	case ignorePrefix:
		if _, ok := c.dirs.byPos[cmt.Pos()]; !ok {
			c.reportDirectivef("staleignore", "staleignore/malformed", text, cmt.Pos(),
				"malformed ignore directive: no check names, so it suppresses nothing")
		}
	case hotpathMarker:
		if !c.dirs.hotpathDocs[cmt.Pos()] {
			c.reportDirectivef("staleignore", "staleignore/dangling", text, cmt.Pos(),
				"hotpath annotation is not in a function declaration's doc comment: nothing is being checked")
		}
	case guardedbyPrefix:
		c.auditAnnotation(cmt, text, "guardedby", "a struct field")
	case atomicMarker:
		c.auditAnnotation(cmt, text, "atomiconly", "a struct field")
	case ownedMarker:
		c.auditAnnotation(cmt, text, "goroutineown", "a type declaration")
	case handoffMarker:
		c.auditAnnotation(cmt, text, "goroutineown", "a function declaration")
	default:
		c.reportDirectivef("staleignore", "staleignore/unknown-directive", text, cmt.Pos(),
			"unknown predlint directive %q: probably a typo, certainly unenforced", word)
	}
}

// auditAnnotation flags an annotation the owning check (when it ran) did
// not consume.
func (c *Context) auditAnnotation(cmt *ast.Comment, text, check, wants string) {
	if !c.ran[check] || c.consumed[cmt.Pos()] {
		return
	}
	c.reportDirectivef("staleignore", "staleignore/dangling", text, cmt.Pos(),
		"dangling %s annotation: it must document %s, here it enforces nothing", strings.TrimPrefix(text, "predlint:"), wants)
}
