package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// checkDeterminism guards the byte-identical-output contract: inside the
// deterministic packages it flags wall-clock reads (time.Now, time.Since),
// global math/rand use (an unseeded process-wide source), environment
// reads (os.Getenv and friends), and iteration over maps whose loop body
// reaches an output, hash, or append-to-result path — the four ways
// nondeterminism has historically crept into simulators.
//
// Clock reads that feed observability only (sweep task timing, worker
// busy-ns) are allowed through Config.ClockAllowlist; benchmark probe
// files are exempted by name via Config.DeterminismSkipFiles.
func checkDeterminism(c *Context) {
	det := map[string]bool{}
	for _, p := range c.Cfg.DeterministicPkgs {
		det[p] = true
	}
	skip := map[string]bool{}
	for _, f := range c.Cfg.DeterminismSkipFiles {
		skip[f] = true
	}
	for _, pkg := range c.Pkgs {
		if !det[pkg.Path] {
			continue
		}
		for _, file := range pkg.Files {
			pos := c.Fset.Position(file.Pos())
			if skip[filepath.Base(pos.Filename)] {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				allowClock := c.Cfg.ClockAllowlist[pkg.Path+"."+fd.Name.Name]
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.CallExpr:
						c.checkDetCall(pkg, n, allowClock)
					case *ast.RangeStmt:
						c.checkMapRange(pkg, n)
					}
					return true
				})
			}
		}
	}
}

// pkgFunc resolves a call of the form pkgname.Func where pkgname is an
// imported package, returning its import path and function name.
func pkgFunc(info *types.Info, call *ast.CallExpr) (path, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// randConstructors are the math/rand package-level functions that build
// explicitly seeded sources rather than touching the global one.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func (c *Context) checkDetCall(pkg *Package, call *ast.CallExpr, allowClock bool) {
	path, name := pkgFunc(pkg.Info, call)
	switch path {
	case "time":
		if (name == "Now" || name == "Since") && !allowClock {
			c.reportf("determinism", "determinism/clock", call.Pos(),
				"time.%s in deterministic package %s: results must not depend on the wall clock", name, pkg.Name)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[name] {
			c.reportf("determinism", "determinism/rand", call.Pos(),
				"global rand.%s in deterministic package %s: use an explicitly seeded *rand.Rand", name, pkg.Name)
		}
	case "os":
		if name == "Getenv" || name == "LookupEnv" || name == "Environ" {
			c.reportf("determinism", "determinism/env", call.Pos(),
				"os.%s in deterministic package %s: results must not depend on the environment", name, pkg.Name)
		}
	}
}

// checkMapRange flags `range m` over a map when the loop body reaches an
// order-sensitive path: appending to a result, printing or writing,
// hashing, returning, or sending on a channel. Commutative bodies
// (counter sums, independent keyed writes) pass.
func (c *Context) checkMapRange(pkg *Package, rng *ast.RangeStmt) {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if reason := orderSensitive(pkg.Info, rng.Body); reason != "" {
		c.reportf("determinism", "determinism/map-order", rng.Pos(),
			"iteration over map reaches an order-sensitive path (%s); map order is random", reason)
	}
}

// orderSensitive scans a map-range body for constructs whose effect
// depends on iteration order, returning a short description or "".
func orderSensitive(info *types.Info, body *ast.BlockStmt) (reason string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			reason = "returns from inside the loop"
		case *ast.SendStmt:
			reason = "sends on a channel"
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				reason = "appends to a slice"
				return false
			}
			if name := callName(n); orderSensitiveCall(name) {
				reason = "calls " + name
			}
		case *ast.AssignStmt:
			// s += ... on a string accumulates in iteration order.
			if n.Tok.String() == "+=" && len(n.Lhs) == 1 {
				if tv, ok := info.Types[n.Lhs[0]]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						reason = "concatenates strings"
					}
				}
			}
		}
		return true
	})
	return reason
}

// callName renders the called function as pkg.Name / recv.Name / Name for
// the order-sensitivity heuristic.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return ""
}

// orderSensitiveCall reports whether a call name looks like output,
// hashing, or accumulation — the sinks where iteration order becomes
// visible.
func orderSensitiveCall(name string) bool {
	if name == "" {
		return false
	}
	if strings.HasPrefix(name, "fmt.") {
		return true
	}
	short := name
	if i := strings.LastIndex(name, "."); i >= 0 {
		short = name[i+1:]
	}
	for _, frag := range []string{"Print", "Write", "Fprint", "Sprint", "Hash", "Sum", "Render", "Encode", "Marshal"} {
		if strings.Contains(short, frag) {
			return true
		}
	}
	return false
}
