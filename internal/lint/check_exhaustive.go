package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// checkExhaustive verifies that every switch over a configured enum type
// (the taxonomy's prediction-function and update-mode enums) either
// covers every declared constant or carries a default case. The paper's
// taxonomy grows by adding constants; this check turns every omission
// into a finding at the switch instead of a silent fall-through.
func checkExhaustive(c *Context) {
	enums := c.enumConstants()
	if len(enums) == 0 {
		return
	}
	for _, pkg := range c.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				tv, ok := pkg.Info.Types[sw.Tag]
				if !ok {
					return true
				}
				named, ok := tv.Type.(*types.Named)
				if !ok {
					return true
				}
				key := enumKey(named)
				consts, tracked := enums[key]
				if !tracked {
					return true
				}
				c.lintSwitch(pkg, sw, key, consts)
				return true
			})
		}
	}
}

// enumConstants resolves Config.EnumTypes ("importpath.TypeName") to the
// package-level constants of each type, keyed by the same string.
func (c *Context) enumConstants() map[string]map[string]string {
	out := map[string]map[string]string{}
	for _, spec := range c.Cfg.EnumTypes {
		dot := strings.LastIndex(spec, ".")
		if dot < 0 {
			continue
		}
		pkgPath, typeName := spec[:dot], spec[dot+1:]
		pkg := c.pkgByPath(pkgPath)
		if pkg == nil {
			continue
		}
		scope := pkg.Types.Scope()
		consts := map[string]string{} // constant value -> a name holding it
		for _, name := range scope.Names() {
			cn, ok := scope.Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			named, ok := cn.Type().(*types.Named)
			if !ok || named.Obj().Name() != typeName || named.Obj().Pkg().Path() != pkgPath {
				continue
			}
			val := cn.Val().ExactString()
			if _, seen := consts[val]; !seen {
				consts[val] = name
			}
		}
		if len(consts) > 0 {
			out[spec] = consts
		}
	}
	return out
}

func enumKey(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// lintSwitch reports the switch when it has no default clause and misses
// at least one of the enum's constants (compared by value, so aliased
// constants count once).
func (c *Context) lintSwitch(pkg *Package, sw *ast.SwitchStmt, enum string, consts map[string]string) {
	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return // default clause: the switch is total by construction
		}
		for _, e := range clause.List {
			if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	var missing []string
	for val, name := range consts {
		if !covered[val] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	c.reportf("exhaustive", "exhaustive/missing-case", sw.Pos(),
		"switch over %s misses %s and has no default", enum, strings.Join(missing, ", "))
}
