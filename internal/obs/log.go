package obs

import "sync"

// Level filters logger output: Quiet drops everything, Info passes
// progress lines, Debug adds per-evaluation detail.
type Level int

const (
	Quiet Level = iota
	Info
	Debug
)

// String returns the level's flag-style name.
func (l Level) String() string {
	switch l {
	case Quiet:
		return "quiet"
	case Info:
		return "info"
	case Debug:
		return "debug"
	default:
		return "unknown"
	}
}

// Logger is a minimal leveled logger writing printf-style lines to a sink.
// Sink calls are serialised under a mutex, so sinks may touch unguarded
// state (progress callbacks historically appended to plain slices). A nil
// logger, and a logger with a nil sink, discard everything.
type Logger struct {
	mu    sync.Mutex
	level Level
	sink  func(format string, args ...interface{})
}

// NewLogger returns a logger emitting records at or below level to sink.
func NewLogger(level Level, sink func(format string, args ...interface{})) *Logger {
	return &Logger{level: level, sink: sink}
}

// Enabled reports whether records at the given level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	if l == nil || l.sink == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return level <= l.level
}

func (l *Logger) logf(level Level, format string, args []interface{}) {
	if l == nil || l.sink == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if level > l.level {
		return
	}
	l.sink(format, args...)
}

// Infof emits a progress-level record.
func (l *Logger) Infof(format string, args ...interface{}) { l.logf(Info, format, args) }

// Debugf emits a debug-level record.
func (l *Logger) Debugf(format string, args ...interface{}) { l.logf(Debug, format, args) }
