package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// HistogramSnapshot is one histogram's state: cumulative bucket counts
// (Prometheus-style, ending with the +Inf bucket), total count and sum.
type HistogramSnapshot struct {
	Buckets []BucketCount `json:"buckets"`
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
}

// BucketCount is a cumulative histogram bucket: observations <= LE. The
// bound is kept as its Prometheus label string ("+Inf" for the last
// bucket) so the snapshot survives encoding/json, which rejects infinities.
type BucketCount struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Sum: h.Sum()}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		s.Buckets = append(s.Buckets, BucketCount{LE: promFloat(b), Count: cum})
	}
	cum += h.inf.Load()
	s.Buckets = append(s.Buckets, BucketCount{LE: "+Inf", Count: cum})
	s.Count = cum
	return s
}

// Quantile estimates the q-th quantile (clamped to [0, 1]) from the
// cumulative buckets, interpolating linearly within the bucket that
// contains the rank — the same estimate Prometheus's histogram_quantile
// produces from the exported _bucket series. A rank that lands in the
// +Inf bucket reports the last finite bound (a floor, not an
// extrapolation). An empty histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	prev, prevCum := 0.0, int64(0)
	for _, b := range s.Buckets {
		if float64(b.Count) < rank {
			if bound, err := strconv.ParseFloat(b.LE, 64); err == nil {
				prev, prevCum = bound, b.Count
			}
			continue
		}
		bound, err := strconv.ParseFloat(b.LE, 64)
		if err != nil || math.IsInf(bound, 0) {
			return prev // +Inf: no upper bound to interpolate toward
		}
		if b.Count == prevCum {
			return bound
		}
		return prev + (bound-prev)*(rank-float64(prevCum))/float64(b.Count-prevCum)
	}
	return prev
}

// Snapshot is a point-in-time JSON-ready view of a registry. Map keys
// marshal in sorted order, so two snapshots of the same run differ only in
// values — never in structure.
type Snapshot struct {
	Manifest     *Manifest                    `json:"manifest,omitempty"`
	WallSeconds  float64                      `json:"wall_seconds"`
	SpanCoverage float64                      `json:"span_coverage"`
	Counters     map[string]int64             `json:"counters"`
	Gauges       map[string]float64           `json:"gauges"`
	Histograms   map[string]HistogramSnapshot `json:"histograms"`
	Spans        []SpanSnapshot               `json:"spans"`
}

// Snapshot captures the registry's current state. Safe on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	s.WallSeconds = r.Wall().Seconds()
	s.SpanCoverage = r.SpanCoverage()
	s.Spans = r.Spans()
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Manifest = r.manifest
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// SnapshotJSON marshals the current snapshot as indented JSON.
func (r *Registry) SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}

// promName maps a metric name onto the Prometheus charset, replacing
// anything outside [a-zA-Z0-9_:] with '_'.
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

func promFloat(v float64) string {
	if v > 1e308 {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every metric in Prometheus text exposition
// format, names sorted: counters and gauges as single samples, histograms
// with cumulative le-labelled buckets, spans as the span_seconds_total /
// span_count_total pair labelled by path. Safe on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h.snapshot()
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, name := range sortedKeys(counters) {
		n := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, counters[name])
	}
	for _, name := range sortedKeys(gauges) {
		n := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(gauges[name]))
	}
	for _, name := range sortedKeys(hists) {
		n := promName(name)
		h := hists[name]
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		for _, bc := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", n, bc.LE, bc.Count)
		}
		fmt.Fprintf(&b, "%s_sum %s\n%s_count %d\n", n, promFloat(h.Sum), n, h.Count)
	}
	spans := r.Spans()
	if len(spans) > 0 {
		b.WriteString("# TYPE span_seconds_total counter\n")
		for _, s := range spans {
			fmt.Fprintf(&b, "span_seconds_total{path=%q} %s\n", s.Path, promFloat(s.Seconds))
		}
		b.WriteString("# TYPE span_count_total counter\n")
		for _, s := range spans {
			fmt.Fprintf(&b, "span_count_total{path=%q} %d\n", s.Path, s.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
