// Package obs is the module's observability layer: a named registry of
// atomic counters, gauges and fixed-bucket histograms, hierarchical timed
// spans that render as a wall-time breakdown tree, a leveled logger, and
// exporters (Prometheus text format, JSON snapshot, pprof capture).
//
// Design constraints, in order:
//
//   - Instrumentation must never perturb results. Nothing in this package
//     feeds back into simulation or evaluation; tables and figures stay
//     byte-identical with observability on or off, at any worker count.
//   - Hot paths pay atomic adds only. Callers resolve *Counter/*Gauge
//     handles once (a mutex-guarded map lookup) and then record through
//     them without locks or allocation. Per-event instrumentation is
//     avoided entirely in the sweep engine: workers accumulate locally
//     and publish once per (trace × index) task.
//   - Snapshots are deterministic in structure: metric and span names are
//     emitted in sorted order, so diffs between runs show only the values.
//
// The zero registry is obtained with New; Default() returns the shared
// process-wide registry used by the hot paths when no explicit registry is
// threaded through (cmd/predsim exports it via -obs and -prom).
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The nil counter
// discards all updates, so optional instrumentation needs no branches at
// call sites beyond the pointer check Add performs itself.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Safe on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can be set or added to (occupancy,
// pool sizes, high-water marks). The nil gauge discards updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds v to the gauge. Safe on a nil receiver.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value. Safe on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is >= the value, with an implicit +Inf bucket.
// Buckets and sum update atomically; Observe allocates nothing.
type Histogram struct {
	bounds []float64 // ascending upper bounds, fixed at creation
	counts []atomic.Int64
	inf    atomic.Int64
	sum    Gauge
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.sum.Add(v)
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.inf.Add(1)
}

// Count returns the total number of observations. Safe on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values. Safe on a nil receiver.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// DurationBuckets are the default span/task-duration bucket bounds in
// seconds, spanning sub-millisecond table renders to multi-minute sweeps.
var DurationBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30, 120}

// Registry is a named collection of metrics and spans. All methods are
// safe for concurrent use; handle resolution takes a mutex, recording
// through a resolved handle does not. A nil *Registry resolves only nil
// handles, making every instrument a no-op.
type Registry struct {
	start time.Time

	mu       sync.Mutex
	counters map[string]*Counter   //predlint:guardedby mu
	gauges   map[string]*Gauge     //predlint:guardedby mu
	hists    map[string]*Histogram //predlint:guardedby mu
	spans    map[string]*spanStat  //predlint:guardedby mu
	manifest *Manifest             //predlint:guardedby mu
}

// New returns an empty registry; its wall-time clock starts now.
func New() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spans:    make(map[string]*spanStat),
	}
}

var defaultRegistry = New()

// Default returns the shared process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil (a valid no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns nil (a valid no-op gauge).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket bounds on first use (later calls ignore bounds). A nil
// registry returns nil (a valid no-op histogram).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(h.bounds))
		r.hists[name] = h
	}
	return h
}

// SetManifest attaches run-identity metadata to the registry; it is
// embedded in every snapshot. Safe on a nil registry.
func (r *Registry) SetManifest(m Manifest) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.manifest = &m
	r.mu.Unlock()
}

// Wall returns the time elapsed since the registry was created.
func (r *Registry) Wall() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// sortedKeys returns the map's keys in sorted order — every exporter
// iterates metrics in this deterministic order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
