package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestPrometheusGolden locks the text exposition format: a registry with
// one of each instrument must export byte-for-byte the checked-in golden
// file. Regenerate with `go test ./internal/obs -run Golden -update`.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("requests_total").Add(3)
	r.Gauge("pool size").Set(4.5) // space exercises name sanitisation
	h := r.Histogram("latency_seconds", []float64{0.5, 2})
	for _, v := range []float64{0.25, 1, 4} {
		h.Observe(v)
	}
	r.ObserveSpan("run", 2*time.Second)
	r.ObserveSpan("run/eval", 1500*time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("prometheus export differs from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromNameSanitisation(t *testing.T) {
	for in, want := range map[string]string{
		"sweep_events_total": "sweep_events_total",
		"pool size":          "pool_size",
		"a-b.c/d":            "a_b_c_d",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
