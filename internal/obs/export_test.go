package obs

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestPrometheusGolden locks the text exposition format: a registry with
// one of each instrument must export byte-for-byte the checked-in golden
// file. Regenerate with `go test ./internal/obs -run Golden -update`.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("requests_total").Add(3)
	r.Gauge("pool size").Set(4.5) // space exercises name sanitisation
	h := r.Histogram("latency_seconds", []float64{0.5, 2})
	for _, v := range []float64{0.25, 1, 4} {
		h.Observe(v)
	}
	r.ObserveSpan("run", 2*time.Second)
	r.ObserveSpan("run/eval", 1500*time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("prometheus export differs from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusHistogramCumulative asserts the histogram exposition
// contract structurally, independent of the golden bytes: every _bucket
// sample is cumulative and non-decreasing, the final bucket is le="+Inf",
// and its value equals the _count sample, with a _sum sample present.
// This is the shape Prometheus's histogram_quantile requires; a regression
// to per-bucket (non-cumulative) counts would pass a naively regenerated
// golden file but fails here.
func TestPrometheusHistogramCumulative(t *testing.T) {
	r := New()
	h := r.Histogram("serve_request_seconds_events_wire", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.0005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}

	var (
		buckets []int64
		les     []string
		count   int64 = -1
		sumSeen bool
	)
	for _, line := range strings.Split(b.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		name, val := fields[0], fields[1]
		switch {
		case strings.HasPrefix(name, "serve_request_seconds_events_wire_bucket{le="):
			le := strings.TrimSuffix(strings.TrimPrefix(name, `serve_request_seconds_events_wire_bucket{le="`), `"}`)
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket sample %q: %v", line, err)
			}
			les = append(les, le)
			buckets = append(buckets, n)
		case name == "serve_request_seconds_events_wire_count":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("count sample %q: %v", line, err)
			}
			count = n
		case name == "serve_request_seconds_events_wire_sum":
			sumSeen = true
		}
	}

	wantBuckets := []int64{2, 3, 4, 5, 6} // cumulative over the 6 observations
	if len(buckets) != len(wantBuckets) {
		t.Fatalf("exported %d buckets (%v), want %d", len(buckets), les, len(wantBuckets))
	}
	for i, n := range buckets {
		if n != wantBuckets[i] {
			t.Fatalf("bucket counts = %v, want cumulative %v", buckets, wantBuckets)
		}
		if i > 0 && n < buckets[i-1] {
			t.Fatalf("bucket counts not monotone: %v", buckets)
		}
	}
	if les[len(les)-1] != "+Inf" {
		t.Fatalf("final bucket le = %q, want +Inf", les[len(les)-1])
	}
	if count != buckets[len(buckets)-1] {
		t.Fatalf("_count = %d, want the +Inf bucket value %d", count, buckets[len(buckets)-1])
	}
	if !sumSeen {
		t.Fatal("no _sum sample exported")
	}
}

// TestHistogramQuantile pins the interpolation against hand-computed
// ranks, including the +Inf floor and the empty-histogram zero.
func TestHistogramQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("q", []float64{1, 2, 4})
	// 10 observations: 5 in (0,1], 3 in (1,2], 2 in (2,4].
	for i := 0; i < 5; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 3; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 2; i++ {
		h.Observe(3)
	}
	s := r.Snapshot().Histograms["q"]
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 1}, // rank 5 sits exactly on the first bound
		{0.8, 2}, // rank 8 exhausts the second bucket
		{0.9, 3}, // rank 9: halfway through (2,4]
		{1.0, 4}, // rank 10: top of the last finite bucket
		{-1, 0},  // clamped to q=0: rank 0 interpolates to the bucket floor
		{2, 4},   // clamped to q=1
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}

	// Everything beyond the finite buckets: the +Inf bucket floors at the
	// last finite bound.
	r2 := New()
	h2 := r2.Histogram("inf", []float64{1})
	h2.Observe(100)
	if got := r2.Snapshot().Histograms["inf"].Quantile(0.99); got != 1 {
		t.Errorf("+Inf-bucket quantile = %v, want the last finite bound 1", got)
	}

	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
}

func TestPromNameSanitisation(t *testing.T) {
	for in, want := range map[string]string{
		"sweep_events_total": "sweep_events_total",
		"pool size":          "pool_size",
		"a-b.c/d":            "a_b_c_d",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
