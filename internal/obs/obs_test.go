package obs

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentHammer drives every instrument from many
// goroutines at once; the race detector checks the synchronisation and the
// final values check that no update is lost.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := New()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("hammer_total").Add(1)
				r.Counter(fmt.Sprintf("worker_%d_total", w)).Inc()
				r.Gauge("level").Add(1)
				r.Histogram("lat", DurationBuckets).Observe(float64(i) / iters)
				r.ObserveSpan("hammer/span", time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hammer_total").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("level").Value(); got != workers*iters {
		t.Errorf("gauge = %v, want %d", got, workers*iters)
	}
	if got := r.Histogram("lat", nil).Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Count != workers*iters {
		t.Errorf("spans = %+v, want one span with count %d", spans, workers*iters)
	}
	for w := 0; w < workers; w++ {
		if got := r.Counter(fmt.Sprintf("worker_%d_total", w)).Value(); got != iters {
			t.Errorf("worker %d counter = %d, want %d", w, got, iters)
		}
	}
}

// TestSnapshotDeterminism: two snapshots of an idle registry are
// value-identical (modulo the wall clock), and the JSON encoding emits
// names in sorted order.
func TestSnapshotDeterminism(t *testing.T) {
	r := New()
	r.Counter("zeta_total").Add(2)
	r.Counter("alpha_total").Add(1)
	r.Gauge("mid").Set(3.5)
	r.Histogram("h", []float64{1, 2}).Observe(1.5)
	r.ObserveSpan("b", time.Second)
	r.ObserveSpan("a/x", time.Second)

	a, b := r.Snapshot(), r.Snapshot()
	a.WallSeconds, b.WallSeconds = 0, 0
	a.SpanCoverage, b.SpanCoverage = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("snapshots differ:\n%+v\n%+v", a, b)
	}

	data, err := r.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	if i, j := strings.Index(string(data), "alpha_total"), strings.Index(string(data), "zeta_total"); i < 0 || j < 0 || i > j {
		t.Errorf("counter names not sorted in JSON (alpha at %d, zeta at %d)", i, j)
	}
	var parsed Snapshot
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("snapshot JSON not parseable: %v\n%s", err, data)
	}
	if parsed.Counters["zeta_total"] != 2 || len(parsed.Spans) != 2 {
		t.Errorf("round-trip lost data: %+v", parsed)
	}
	if parsed.Spans[0].Path != "a/x" || parsed.Spans[1].Path != "b" {
		t.Errorf("spans not sorted: %+v", parsed.Spans)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := New().Histogram("h", []float64{0.5, 2})
	for _, v := range []float64{0.25, 0.5, 1, 4} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []BucketCount{{LE: "0.5", Count: 2}, {LE: "2", Count: 3}, {LE: "+Inf", Count: 4}}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Errorf("buckets = %+v, want %+v", s.Buckets, want)
	}
	if s.Count != 4 || s.Sum != 5.75 {
		t.Errorf("count=%d sum=%v, want 4 and 5.75", s.Count, s.Sum)
	}
}

// TestNilSafety: a nil registry and the handles it resolves are inert but
// never panic — optional instrumentation needs no call-site branches.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(1)
	r.Gauge("g").Set(1)
	r.Histogram("h", DurationBuckets).Observe(1)
	r.Span("s")()
	r.ObserveSpan("s", time.Second)
	r.SetManifest(Manifest{})
	if v := r.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter = %d", v)
	}
	if tree := r.SpanTree(); tree != "" {
		t.Errorf("nil span tree = %q", tree)
	}
	if s := r.Snapshot(); len(s.Counters) != 0 || s.Spans != nil {
		t.Errorf("nil snapshot = %+v", s)
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
	var l *Logger
	l.Infof("dropped %d", 1)
	l.Debugf("dropped")
	if l.Enabled(Info) {
		t.Error("nil logger enabled")
	}
}

func TestSpanTreeNesting(t *testing.T) {
	r := New()
	r.ObserveSpan("generate", 2*time.Second)
	r.ObserveSpan("table/8", 4*time.Second)
	r.ObserveSpan("table/8/eval", 3900*time.Millisecond)
	r.ObserveSpan("table/8/eval", 100*time.Millisecond)
	tree := r.SpanTree()
	for _, want := range []string{"generate", "table/8", "table/8/eval", "x2", "span tree (wall"} {
		if !strings.Contains(tree, want) {
			t.Errorf("span tree missing %q:\n%s", want, tree)
		}
	}
	// The child renders indented two spaces deeper than its parent.
	var parentIndent, childIndent int
	for _, line := range strings.Split(tree, "\n") {
		trimmed := strings.TrimLeft(line, " ")
		if strings.HasPrefix(trimmed, "table/8 ") {
			parentIndent = len(line) - len(trimmed)
		}
		if strings.HasPrefix(trimmed, "table/8/eval") {
			childIndent = len(line) - len(trimmed)
		}
	}
	if childIndent != parentIndent+2 {
		t.Errorf("child indent %d, parent %d:\n%s", childIndent, parentIndent, tree)
	}
	// Coverage counts only top-level spans: generate + table/8, not the
	// nested eval.
	spans := r.Spans()
	exists := map[string]bool{}
	for _, s := range spans {
		exists[s.Path] = true
	}
	if p := spanParent("table/8/eval", exists); p != "table/8" {
		t.Errorf("parent of table/8/eval = %q", p)
	}
	if p := spanParent("table/8", exists); p != "" {
		t.Errorf("parent of table/8 = %q (no \"table\" span exists)", p)
	}
}

func TestSpanMeasuresElapsed(t *testing.T) {
	r := New()
	end := r.Span("sleep")
	time.Sleep(10 * time.Millisecond)
	end()
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Seconds < 0.009 {
		t.Errorf("spans = %+v, want one span >= ~10ms", spans)
	}
}

func TestLoggerLevels(t *testing.T) {
	var lines []string
	sink := func(format string, args ...interface{}) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	l := NewLogger(Info, sink)
	l.Infof("info %d", 1)
	l.Debugf("debug %d", 2)
	if len(lines) != 1 || lines[0] != "info 1" {
		t.Errorf("Info-level lines = %q", lines)
	}
	if !l.Enabled(Info) || l.Enabled(Debug) {
		t.Error("Enabled wrong at Info level")
	}

	lines = nil
	l = NewLogger(Debug, sink)
	l.Infof("info")
	l.Debugf("debug")
	if len(lines) != 2 {
		t.Errorf("Debug-level lines = %q", lines)
	}

	lines = nil
	l = NewLogger(Quiet, sink)
	l.Infof("info")
	l.Debugf("debug")
	if len(lines) != 0 {
		t.Errorf("Quiet-level lines = %q", lines)
	}
}

// TestLoggerSerialisesSink: concurrent emitters append to a plain slice
// through the sink; the mutex (checked by -race) and the final count prove
// calls are serialised.
func TestLoggerSerialisesSink(t *testing.T) {
	var lines []string
	l := NewLogger(Info, func(format string, args ...interface{}) {
		lines = append(lines, format)
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Infof("line")
			}
		}()
	}
	wg.Wait()
	if len(lines) != 800 {
		t.Errorf("lines = %d, want 800", len(lines))
	}
}

func TestLevelString(t *testing.T) {
	for lv, want := range map[Level]string{Quiet: "quiet", Info: "info", Debug: "debug", Level(9): "unknown"} {
		if got := lv.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", lv, got, want)
		}
	}
}

func TestManifest(t *testing.T) {
	m := NewManifest(42, "test", 4)
	if m.Seed != 42 || m.Scale != "test" || m.Workers != 4 {
		t.Errorf("manifest params: %+v", m)
	}
	if m.GoVersion == "" || m.GOOS == "" || m.GOARCH == "" {
		t.Errorf("manifest runtime identity empty: %+v", m)
	}
	if _, err := time.Parse(time.RFC3339, m.StartedAt); err != nil {
		t.Errorf("StartedAt %q not RFC3339: %v", m.StartedAt, err)
	}
	r := New()
	r.SetManifest(m)
	snap := r.Snapshot()
	if snap.Manifest == nil || snap.Manifest.Seed != 42 {
		t.Errorf("snapshot manifest = %+v", snap.Manifest)
	}
}

func TestVersion(t *testing.T) {
	v := Version()
	if v == "" || !strings.Contains(v, "go1") {
		t.Errorf("Version() = %q", v)
	}
}
