package obs

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to path and returns the
// function that stops profiling and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes the current heap profile to path, running a GC
// first so the profile reflects live objects.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	err = pprof.WriteHeapProfile(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
