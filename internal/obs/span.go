package obs

import (
	"fmt"
	"strings"
	"time"
)

// spanStat accumulates all completions of one span path.
type spanStat struct {
	count int64
	total time.Duration
}

// Span starts a timed span at the given slash-separated path and returns
// the function that ends it. Paths form the hierarchy: "table/8/eval" is a
// child of "table/8" (the parent of a path is its longest registered
// proper prefix at a '/' boundary, or the root when none exists), and the
// same path may complete many times — durations and counts accumulate.
// Safe on a nil registry (the returned end func is a no-op).
func (r *Registry) Span(path string) func() {
	if r == nil {
		return func() {}
	}
	start := time.Now()
	return func() { r.ObserveSpan(path, time.Since(start)) }
}

// ObserveSpan records one completion of the span path with an explicit
// duration — the primitive behind Span, exposed so tests and replayed
// measurements can record deterministic timings. Safe on a nil registry.
func (r *Registry) ObserveSpan(path string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	s, ok := r.spans[path]
	if !ok {
		s = &spanStat{}
		r.spans[path] = s
	}
	s.count++
	s.total += d
	r.mu.Unlock()
}

// SpanSnapshot is one span path's accumulated timing.
type SpanSnapshot struct {
	Path    string  `json:"path"`
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Spans returns every span sorted by path.
func (r *Registry) Spans() []SpanSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanSnapshot, 0, len(r.spans))
	for _, path := range sortedKeys(r.spans) {
		s := r.spans[path]
		out = append(out, SpanSnapshot{Path: path, Count: s.count, Seconds: s.total.Seconds()})
	}
	return out
}

// spanParent returns the longest proper prefix of path (at a '/'
// boundary) that exists in paths, or "" for a top-level span.
func spanParent(path string, paths map[string]bool) string {
	for {
		i := strings.LastIndexByte(path, '/')
		if i < 0 {
			return ""
		}
		path = path[:i]
		if paths[path] {
			return path
		}
	}
}

// SpanCoverage returns the fraction of the registry's wall time covered
// by top-level spans — how much of the run the span tree accounts for.
func (r *Registry) SpanCoverage() float64 {
	if r == nil {
		return 0
	}
	wall := r.Wall().Seconds()
	if wall <= 0 {
		return 0
	}
	spans := r.Spans()
	exists := make(map[string]bool, len(spans))
	for _, s := range spans {
		exists[s.Path] = true
	}
	var top float64
	for _, s := range spans {
		if spanParent(s.Path, exists) == "" {
			top += s.Seconds
		}
	}
	return top / wall
}

// SpanTree renders the accumulated spans as an indented wall-time
// breakdown: each line shows the span path, total duration, share of the
// registry's wall time, and completion count. Children are indented under
// their parent; sibling order is lexicographic (deterministic).
func (r *Registry) SpanTree() string {
	if r == nil {
		return ""
	}
	spans := r.Spans()
	wall := r.Wall().Seconds()
	var b strings.Builder
	fmt.Fprintf(&b, "span tree (wall %.3fs, top-level coverage %.1f%%):\n",
		wall, 100*r.SpanCoverage())
	exists := make(map[string]bool, len(spans))
	for _, s := range spans {
		exists[s.Path] = true
	}
	depth := func(path string) int {
		d := 0
		for p := spanParent(path, exists); p != ""; p = spanParent(p, exists) {
			d++
		}
		return d
	}
	for _, s := range spans {
		pct := 0.0
		if wall > 0 {
			pct = 100 * s.Seconds / wall
		}
		indent := strings.Repeat("  ", depth(s.Path))
		fmt.Fprintf(&b, "  %s%-*s %9.3fs %5.1f%%  x%d\n",
			indent, 40-len(indent), s.Path, s.Seconds, pct, s.Count)
	}
	return b.String()
}
