package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"
)

// Manifest identifies one run well enough to reproduce it and to compare
// metric files across machines and commits: the simulation parameters plus
// the build and host identity.
type Manifest struct {
	Seed    int64  `json:"seed"`
	Scale   string `json:"scale"`
	Workers int    `json:"workers"`
	// ChaosSeed is the fault injector's seed when the run had chaos
	// injection enabled; a chaos run replays from this value alone.
	ChaosSeed int64  `json:"chaos_seed,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GitRevision is the VCS revision stamped by the go tool; empty for
	// non-VCS builds (go run from a module cache, test binaries).
	GitRevision string `json:"git_revision,omitempty"`
	GitDirty    bool   `json:"git_dirty,omitempty"`
	// StartedAt is the manifest creation time in RFC3339 (UTC).
	StartedAt string `json:"started_at"`
}

// NewManifest stamps a manifest for a run with the given parameters,
// filling build and host identity from the runtime.
func NewManifest(seed int64, scale string, workers int) Manifest {
	m := Manifest{
		Seed:      seed,
		Scale:     scale,
		Workers:   workers,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		StartedAt: time.Now().UTC().Format(time.RFC3339),
	}
	m.GitRevision, m.GitDirty = vcsRevision()
	return m
}

// vcsRevision returns the build's VCS revision and dirty flag from the
// embedded build info, if the binary was built from a VCS checkout.
func vcsRevision() (rev string, dirty bool) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", false
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return rev, dirty
}

// Version returns a human-readable build identity for -version flags:
// module version, VCS revision (when stamped) and the toolchain/platform.
func Version() string {
	version := "(devel)"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	rev, dirty := vcsRevision()
	if rev == "" {
		rev = "unknown"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return fmt.Sprintf("%s rev %s (%s %s/%s)",
		version, rev, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
