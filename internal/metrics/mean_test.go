package metrics

import "testing"

func TestMean(t *testing.T) {
	if got := Mean(nil, Confusion.PVP); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	cs := []Confusion{
		{TP: 8, FP: 2}, // PVP 0.8
		{TP: 2, FP: 8}, // PVP 0.2
		{TP: 5, FP: 5}, // PVP 0.5
	}
	if got, want := Mean(cs, Confusion.PVP), 0.5; got != want {
		t.Fatalf("Mean PVP = %v, want %v", got, want)
	}
	// Mean averages the statistics, not the pooled counts (the paper's
	// "arithmetic average over all benchmarks") — visible when the
	// benchmarks differ in decision counts.
	uneven := []Confusion{{TP: 9, FP: 1}, {TP: 10, FP: 90}} // PVP 0.9, 0.1
	pooled := Confusion{TP: 19, FP: 91}
	if got := Mean(uneven, Confusion.PVP); got != 0.5 || got == pooled.PVP() {
		t.Fatalf("Mean PVP = %v, want 0.5 (pooled would be %v)", got, pooled.PVP())
	}
}
