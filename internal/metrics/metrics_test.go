package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"cohpredict/internal/bitmap"
)

func TestAddBasics(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, true)  // FN
	c.Add(false, false) // TN
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.Decisions() != 4 {
		t.Errorf("Decisions = %d", c.Decisions())
	}
	if got := c.Prevalence(); got != 0.5 {
		t.Errorf("Prevalence = %v", got)
	}
	if got := c.Sensitivity(); got != 0.5 {
		t.Errorf("Sensitivity = %v", got)
	}
	if got := c.PVP(); got != 0.5 {
		t.Errorf("PVP = %v", got)
	}
	if got := c.Specificity(); got != 0.5 {
		t.Errorf("Specificity = %v", got)
	}
	if got := c.PVN(); got != 0.5 {
		t.Errorf("PVN = %v", got)
	}
	if got := c.Accuracy(); got != 0.5 {
		t.Errorf("Accuracy = %v", got)
	}
}

func TestZeroDenominators(t *testing.T) {
	var c Confusion
	for name, got := range map[string]float64{
		"Prevalence":  c.Prevalence(),
		"Sensitivity": c.Sensitivity(),
		"PVP":         c.PVP(),
		"Specificity": c.Specificity(),
		"PVN":         c.PVN(),
		"Accuracy":    c.Accuracy(),
		"StdErrPVP":   c.StdErrPVP(),
		"StdErrSens":  c.StdErrSensitivity(),
	} {
		if got != 0 {
			t.Errorf("%s on empty = %v, want 0", name, got)
		}
	}
}

func TestAddBitmaps(t *testing.T) {
	var c Confusion
	pred := bitmap.New(0, 1, 2)   // predicts nodes 0,1,2
	actual := bitmap.New(2, 3)    // nodes 2,3 actually read
	c.AddBitmaps(pred, actual, 8) // 8-node machine
	if c.TP != 1 {
		t.Errorf("TP = %d, want 1 (node 2)", c.TP)
	}
	if c.FP != 2 {
		t.Errorf("FP = %d, want 2 (nodes 0,1)", c.FP)
	}
	if c.FN != 1 {
		t.Errorf("FN = %d, want 1 (node 3)", c.FN)
	}
	if c.TN != 4 {
		t.Errorf("TN = %d, want 4 (nodes 4-7)", c.TN)
	}
}

func TestAddBitmapsIgnoresHighBits(t *testing.T) {
	var c Confusion
	c.AddBitmaps(bitmap.New(10), bitmap.New(11), 4)
	if c.Decisions() != 4 || c.TN != 4 {
		t.Errorf("high bits leaked: %+v", c)
	}
}

func TestMerge(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	b := Confusion{TP: 10, FP: 20, TN: 30, FN: 40}
	a.Merge(b)
	if a != (Confusion{TP: 11, FP: 22, TN: 33, FN: 44}) {
		t.Errorf("Merge = %+v", a)
	}
}

func TestDegreeOfSharing(t *testing.T) {
	c := Confusion{TP: 8, FN: 8, TN: 144} // 16 of 160 decisions positive
	got := c.DegreeOfSharing(16)
	if math.Abs(got-1.6) > 1e-9 {
		t.Errorf("DegreeOfSharing = %v, want 1.6", got)
	}
}

func TestForwardTraffic(t *testing.T) {
	c := Confusion{TP: 5, FP: 7, TN: 1, FN: 2}
	if c.ForwardTraffic() != 12 {
		t.Errorf("ForwardTraffic = %d", c.ForwardTraffic())
	}
	if c.SharingEvents() != 7 {
		t.Errorf("SharingEvents = %d", c.SharingEvents())
	}
}

// Property: AddBitmaps conserves decisions (TP+FP+TN+FN == nodes) and the
// identities TP+FN = |actual|, TP+FP = |predicted| (restricted to nodes).
func TestAddBitmapsProperty(t *testing.T) {
	f := func(p, a uint16) bool {
		var c Confusion
		pred, act := bitmap.Bitmap(p), bitmap.Bitmap(a)
		c.AddBitmaps(pred, act, 16)
		if c.Decisions() != 16 {
			return false
		}
		if c.TP+c.FN != uint64(act.Count()) {
			return false
		}
		return c.TP+c.FP == uint64(pred.Count())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: statistics stay within [0, 1].
func TestStatisticsBounded(t *testing.T) {
	f := func(tp, fp, tn, fn uint16) bool {
		c := Confusion{TP: uint64(tp), FP: uint64(fp), TN: uint64(tn), FN: uint64(fn)}
		for _, v := range []float64{
			c.Prevalence(), c.Sensitivity(), c.PVP(),
			c.Specificity(), c.PVN(), c.Accuracy(),
		} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: prevalence is a weighted bound linking sensitivity and PVP —
// TP ≤ prevalence·decisions and PVP·ForwardTraffic == TP.
func TestPVPIdentity(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{TP: uint64(tp), FP: uint64(fp), TN: uint64(tn), FN: uint64(fn)}
		if c.ForwardTraffic() == 0 {
			return c.PVP() == 0
		}
		got := c.PVP() * float64(c.ForwardTraffic())
		return math.Abs(got-float64(c.TP)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStdErrs(t *testing.T) {
	c := Confusion{TP: 50, FP: 50, FN: 100}
	want := math.Sqrt(0.25 / 100)
	if got := c.StdErrPVP(); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdErrPVP = %v, want %v", got, want)
	}
	// Sensitivity = 50/150; stderr over 150 trials.
	p := 50.0 / 150.0
	want = math.Sqrt(p * (1 - p) / 150)
	if got := c.StdErrSensitivity(); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdErrSensitivity = %v, want %v", got, want)
	}
}

func TestString(t *testing.T) {
	c := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	if got := c.String(); got == "" {
		t.Error("String empty")
	}
}
