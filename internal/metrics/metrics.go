// Package metrics implements the screening-test statistics the paper borrows
// from epidemiological screening and polygraph testing (paper §4, Table 2):
// prevalence, sensitivity, and the predictive value of a positive test (PVP),
// plus the related specificity and PVN which the paper defines but does not
// plot, and Gastwirth's precision analysis for low-prevalence tests.
//
// Every prediction event contributes one binary decision per node: the
// predictor claims the node will or will not read the newly written block,
// and the truth is whether it actually did. Decisions are tallied in a
// Confusion matrix.
package metrics

import (
	"fmt"
	"math"

	"cohpredict/internal/bitmap"
)

// Confusion accumulates the four outcome counts of the paper's Figure 5 Venn
// diagram. The zero value is an empty tally ready for use.
type Confusion struct {
	TP uint64 // predicted sharer, actually read (useful forward)
	FP uint64 // predicted sharer, did not read (wasted forward)
	TN uint64 // predicted non-sharer, did not read
	FN uint64 // predicted non-sharer, actually read (missed opportunity)
}

// Add tallies a single binary decision.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// AddBitmaps scores a predicted sharing bitmap against the true reader
// bitmap over the low nodes bits, one decision per node.
func (c *Confusion) AddBitmaps(predicted, actual bitmap.Bitmap, nodes int) {
	full := bitmap.Full(nodes)
	p := predicted & full
	a := actual & full
	tp := (p & a).Count()
	fp := (p &^ a).Count()
	fn := (a &^ p).Count()
	c.TP += uint64(tp)
	c.FP += uint64(fp)
	c.FN += uint64(fn)
	c.TN += uint64(nodes - tp - fp - fn)
}

// Merge adds the counts of o into c.
func (c *Confusion) Merge(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Decisions returns the total number of binary decisions tallied.
func (c Confusion) Decisions() uint64 { return c.TP + c.FP + c.TN + c.FN }

// SharingEvents returns the number of decisions where sharing actually took
// place (the paper's "dynamic sharing events", Table 6).
func (c Confusion) SharingEvents() uint64 { return c.TP + c.FN }

// ratio returns num/den, or 0 when the denominator is zero (an undefined
// statistic renders as 0, matching how an implementation with no positive
// traffic behaves).
func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Prevalence is the base rate of true sharing: (TP+FN) / all decisions.
// It bounds the total possible benefit of any prediction scheme.
func (c Confusion) Prevalence() float64 { return ratio(c.TP+c.FN, c.Decisions()) }

// Sensitivity is TP/(TP+FN): how much of the true sharing the scheme
// captured. An insensitive predictor misses forwarding opportunities.
func (c Confusion) Sensitivity() float64 { return ratio(c.TP, c.TP+c.FN) }

// PVP is the predictive value of a positive test, TP/(TP+FP): the fraction
// of data-forwarding traffic that is useful. Prior studies called this
// "prediction accuracy".
func (c Confusion) PVP() float64 { return ratio(c.TP, c.TP+c.FP) }

// Specificity is TN/(TN+FP): how well the scheme avoids forwarding to
// non-readers. Defined in the paper's sources but not plotted there.
func (c Confusion) Specificity() float64 { return ratio(c.TN, c.TN+c.FP) }

// PVN is the predictive value of a negative test, TN/(TN+FN).
func (c Confusion) PVN() float64 { return ratio(c.TN, c.TN+c.FN) }

// Accuracy is (TP+TN) / all decisions. With low prevalence it is dominated
// by true negatives and is therefore a poor headline metric — one of the
// paper's motivations for using sensitivity and PVP instead.
func (c Confusion) Accuracy() float64 { return ratio(c.TP+c.TN, c.Decisions()) }

// ForwardTraffic returns the number of positive predictions (TP+FP): the
// data-forwarding messages a forwarding protocol driven by this predictor
// would inject.
func (c Confusion) ForwardTraffic() uint64 { return c.TP + c.FP }

// DegreeOfSharing converts prevalence on an n-node machine into the
// Weber–Gupta "degree of sharing" (average readers per write): prevalence
// times n. The paper reports 9.19% average prevalence as degree 1.5 on 16
// nodes.
func (c Confusion) DegreeOfSharing(nodes int) float64 {
	return c.Prevalence() * float64(nodes)
}

// String summarises the matrix and headline statistics.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d prev=%.4f sens=%.4f pvp=%.4f",
		c.TP, c.FP, c.TN, c.FN, c.Prevalence(), c.Sensitivity(), c.PVP())
}

// Mean returns the arithmetic mean of stat over the confusions — the
// paper's "arithmetic average over all benchmarks" (averaging the
// statistics, not pooling the counts), shared by every cross-benchmark
// summary in the module. An empty slice yields 0.
func Mean(cs []Confusion, stat func(Confusion) float64) float64 {
	if len(cs) == 0 {
		return 0
	}
	var t float64
	for _, c := range cs {
		t += stat(c)
	}
	return t / float64(len(cs))
}

// Precision bounds (Gastwirth 1987). With low prevalence, the sampling error
// of PVP estimates grows: a small absolute error in the false-positive rate
// swamps the few true positives. StdErrPVP returns the standard error of the
// PVP estimate treating each decision as an independent Bernoulli trial —
// the paper cites Gastwirth to warn that low prevalence "compounds the
// errors in measuring the accuracy of a prediction scheme".
func (c Confusion) StdErrPVP() float64 {
	n := c.TP + c.FP
	if n == 0 {
		return 0
	}
	p := c.PVP()
	return math.Sqrt(p * (1 - p) / float64(n))
}

// StdErrSensitivity returns the standard error of the sensitivity estimate.
func (c Confusion) StdErrSensitivity() float64 {
	n := c.TP + c.FN
	if n == 0 {
		return 0
	}
	p := c.Sensitivity()
	return math.Sqrt(p * (1 - p) / float64(n))
}
