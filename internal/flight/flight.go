// Package flight is the serve path's flight recorder: an always-on,
// sampled, per-request trace capture with per-stage latency accounting.
// The aggregate serve_* counters say *how much* the service did; this
// package answers "why was THIS request slow, and which injected fault
// hit it?" — the per-instance discipline a multi-node router needs before
// it can make health and rebalancing decisions.
//
// Every event post gets a pooled Record stamped through its life:
//
//	decode → queue-wait → batch-wait → shard-execute → encode
//
// The handler stamps decode/encode and the request identity (client
// X-Request-ID, transport, byte sizes); the session stamps the enqueue
// instant; the shard workers stamp batch execution through two hot-path
// kernels (NoteBatch, MarkFault) that cost a few atomic operations per
// micro-batch — never per event — and allocate nothing.
//
// At Finish the record is promoted tail-based: requests that erred, were
// hit by an injected fault, or ran slower than the threshold always land
// in the bounded slow-log; of the rest, one in Sample lands in the main
// ring. Both rings are lock-free fixed-size arrays of atomic pointers
// with swap-ownership semantics: a writer publishes a record with a
// single Swap (recycling whatever it displaced), and a reader drains by
// swapping nil in — every record is owned by exactly one party at all
// times, so the capture path is race-free without a lock anywhere.
//
// Captures read DESTRUCTIVELY: GET /v1/debug/requests (or /slow) drains
// the ring it reads, so two consecutive captures never report the same
// request twice, and entries are ordered by a global finish sequence —
// deterministic structure, values vary.
//
// Stage semantics: the stages are independently measured intervals, not
// a partition of the total. queue_wait spans enqueue → first shard
// execution start (it therefore contains the first micro-batch's
// coalescing window); batch_wait accumulates each distinct micro-batch's
// coalescing wait; shard_exec accumulates the processing time of every
// micro-batch that carried one of the request's events.
//
// All wall-clock reads funnel through Nanos — the single function on
// predlint's clock allowlist for this package and for serve — so the
// determinism contract ("timing feeds metrics, never results") stays
// mechanically checkable.
package flight

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cohpredict/internal/obs"
)

// epoch anchors Nanos: package-load time, read once. Records carry
// offsets from it, never absolute wall times.
var epoch = time.Now()

// Nanos returns monotonic nanoseconds since process start. It is the one
// clock read the serving layer performs (predlint clock-allowlisted);
// every stamp and stage duration derives from it.
func Nanos() int64 { return int64(time.Since(epoch)) }

// Transport and route labels. They select which per-route/per-transport
// histogram family a record observes into.
const (
	TransportJSON = "json"
	TransportWire = "wire"
	RouteEvents   = "events"
)

// Fault bits a record can carry, matching internal/fault's classes on
// the event path.
const (
	FaultDrop  uint32 = 1 << iota // batch dropped at queue admission (503)
	FaultDelay                    // shard micro-batch stalled
	FaultError                    // injected 500 before processing
	FaultReset                    // connection reset after processing
)

// faultNames renders a fault bitmask in fixed order (deterministic JSON).
func faultNames(bits uint32) []string {
	if bits == 0 {
		return nil
	}
	out := make([]string, 0, 4)
	if bits&FaultDrop != 0 {
		out = append(out, "drop")
	}
	if bits&FaultDelay != 0 {
		out = append(out, "delay")
	}
	if bits&FaultError != 0 {
		out = append(out, "error")
	}
	if bits&FaultReset != 0 {
		out = append(out, "reset")
	}
	return out
}

// LatencyBuckets are the bounds (seconds) of the serve_*_seconds
// histograms: 50µs resolution at the fast end (a warm COHWIRE1 batch),
// stretching to multi-second outliers.
var LatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Defaults for the zero Options value.
const (
	DefaultSample        = 64
	DefaultSlowThreshold = 25 * time.Millisecond
	DefaultRingSize      = 512
	DefaultSlowSize      = 256
)

// Options configures a Recorder. The zero value records every-64th
// request into a 512-slot ring with a 25ms slow threshold.
type Options struct {
	// Registry receives the RED histograms; nil keeps tracing (rings and
	// captures work) but makes the histograms inert.
	Registry *obs.Registry
	// Sample records every Nth finished event post into the main ring
	// (1 = all). <=0 takes DefaultSample. Errored, faulted, and slow
	// requests bypass sampling into the slow-log.
	Sample int
	// SlowThreshold promotes requests at or above this total latency to
	// the slow-log. <=0 takes DefaultSlowThreshold.
	SlowThreshold time.Duration
	// Ring and Slow size the two capture rings. <=0 takes the defaults.
	Ring int
	Slow int
}

// histSet is one (route, transport) family's pre-resolved histogram
// handles; records hold a pointer so Finish observes without any lookup.
type histSet struct {
	request *obs.Histogram // serve_request_seconds_<route>_<transport>
	queue   *obs.Histogram // serve_queue_wait_seconds_<route>_<transport>
	batch   *obs.Histogram // serve_batch_wait_seconds_<route>_<transport>
	exec    *obs.Histogram // serve_shard_exec_seconds_<route>_<transport>
}

// Record is one request's flight trace. The handler goroutine owns the
// plain fields; shard workers touch only the atomic ones, through
// NoteBatch and MarkFault. All methods are nil-safe so an untraced call
// path (standalone sessions, disabled recorder) costs one pointer test.
// Ownership moves by handoff only — pool Get, ring Swap, Finish — and
// the //predlint:owned contract makes touching a record after handing it
// off a lint finding.
//
//predlint:owned
type Record struct {
	id        string
	session   string
	route     string
	transport string
	hist      *histSet

	seq      uint64
	status   int
	events   int
	bytesIn  int
	bytesOut int
	replay   bool

	start    int64 // Nanos at Begin
	enqueue  int64 // Nanos when the session admitted the batch
	decodeNS int64
	encodeNS int64
	queueNS  int64 // derived at Finish
	totalNS  int64 // derived at Finish

	// Stamped by shard workers, possibly concurrently from several shards.
	firstExec atomic.Int64  // earliest micro-batch execution start
	batchNS   atomic.Int64  // accumulated coalescing wait across batches
	execNS    atomic.Int64  // accumulated processing time across batches
	batches   atomic.Int64  // distinct micro-batches that carried this request
	lastBatch atomic.Uint64 // dedup: last batch id noted by this record
	fault     atomic.Uint32 // Fault* bits
}

// reset clears a pooled record for reuse. The recorder owns the record
// exclusively here (pool Get / ring Swap both order the handoff).
func (r *Record) reset() {
	r.id, r.session, r.route, r.transport, r.hist = "", "", "", "", nil
	r.seq, r.status, r.events, r.bytesIn, r.bytesOut = 0, 0, 0, 0, 0
	r.replay = false
	r.start, r.enqueue, r.decodeNS, r.encodeNS, r.queueNS, r.totalNS = 0, 0, 0, 0, 0, 0
	r.firstExec.Store(0)
	r.batchNS.Store(0)
	r.execNS.Store(0)
	r.batches.Store(0)
	r.lastBatch.Store(0)
	r.fault.Store(0)
}

// SetID records the client-supplied X-Request-ID. Safe on nil.
func (r *Record) SetID(id string) {
	if r != nil {
		r.id = id
	}
}

// ID returns the recorded request id ("" on nil).
func (r *Record) ID() string {
	if r == nil {
		return ""
	}
	return r.id
}

// SetSession records the target session id. Safe on nil.
func (r *Record) SetSession(id string) {
	if r != nil {
		r.session = id
	}
}

// SetEvents records the decoded batch size. Safe on nil.
func (r *Record) SetEvents(n int) {
	if r != nil {
		r.events = n
	}
}

// SetBytesIn records the request body size. Safe on nil.
func (r *Record) SetBytesIn(n int) {
	if r != nil {
		r.bytesIn = n
	}
}

// SetBytesOut records the response body size. Safe on nil.
func (r *Record) SetBytesOut(n int) {
	if r != nil {
		r.bytesOut = n
	}
}

// AddDecode accumulates request-decoding time. Safe on nil.
func (r *Record) AddDecode(ns int64) {
	if r != nil {
		r.decodeNS += ns
	}
}

// AddEncode accumulates response-encoding time. Safe on nil.
func (r *Record) AddEncode(ns int64) {
	if r != nil {
		r.encodeNS += ns
	}
}

// SetEnqueue stamps the instant the session admitted the batch to the
// shard queues; queue_wait is measured from here. Safe on nil.
func (r *Record) SetEnqueue(ns int64) {
	if r != nil {
		r.enqueue = ns
	}
}

// MarkReplay flags the request as served from the idempotency cache.
// Safe on nil.
func (r *Record) MarkReplay() {
	if r != nil {
		r.replay = true
	}
}

// MarkFault ORs an injected-fault bit into the record. Shard workers and
// the handler may race; the CAS loop makes the OR atomic without
// sync/atomic's 1.23-only Or. Safe on nil.
//
//predlint:hotpath
func (r *Record) MarkFault(bits uint32) {
	if r == nil {
		return
	}
	for {
		old := r.fault.Load()
		if old&bits == bits || r.fault.CompareAndSwap(old, old|bits) {
			return
		}
	}
}

// NoteBatch is the shard worker's stamping kernel, called once per
// (request, micro-batch): execStart is the batch's processing start,
// wait its coalescing wait, exec its processing time. batchID must be
// non-zero and unique across the session's shards; consecutive calls
// with the same id (several of the request's events in one batch) are
// deduplicated, so a request's accounting counts each micro-batch once.
// Cost: a handful of atomic ops per batch, zero allocation. Safe on nil.
//
//predlint:hotpath
func (r *Record) NoteBatch(batchID uint64, execStart, wait, exec int64) {
	if r == nil || r.lastBatch.Swap(batchID) == batchID {
		return
	}
	r.batches.Add(1)
	r.batchNS.Add(wait)
	r.execNS.Add(exec)
	for {
		old := r.firstExec.Load()
		if old != 0 && old <= execStart {
			return
		}
		if r.firstExec.CompareAndSwap(old, execStart) {
			return
		}
	}
}

// ring is a fixed-size lock-free capture ring. put publishes a record
// with one Swap and returns whatever it displaced (the caller recycles
// it); drain swaps nil into every slot, taking ownership of the
// contents. Ownership moves only through those swaps, so concurrent
// writers and a draining reader never share a live record.
type ring struct {
	slots []atomic.Pointer[Record]
	next  atomic.Uint64
}

func newRing(n int) *ring { return &ring{slots: make([]atomic.Pointer[Record], n)} }

// put publishes r into the ring, transferring ownership; the displaced
// record comes back for the caller to recycle.
//
//predlint:handoff
func (g *ring) put(r *Record) *Record {
	i := g.next.Add(1) - 1
	return g.slots[i%uint64(len(g.slots))].Swap(r)
}

func (g *ring) drain() []*Record {
	out := make([]*Record, 0, len(g.slots))
	for i := range g.slots {
		if r := g.slots[i].Swap(nil); r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Recorder is the flight recorder: a record pool, the two capture rings,
// and the pre-resolved RED histogram families.
type Recorder struct {
	sample uint64
	slowNS int64

	seq  atomic.Uint64
	pool sync.Pool
	ring *ring
	slow *ring

	// evJSON and evWire are the two event-path families, resolved once in
	// New so Begin's hot path never touches the map or its mutex. (Begin
	// used to read hists lock-free for these keys, racing histSet's
	// insert of a novel route/transport pair — a concurrent map
	// read/write the guardedby annotation below now makes impossible to
	// reintroduce.)
	evJSON *histSet
	evWire *histSet

	mu    sync.Mutex
	hists map[string]*histSet //predlint:guardedby mu
	reg   *obs.Registry
}

// New builds a recorder. A nil *Recorder is also valid: Begin returns a
// nil record and every stamp is a no-op.
func New(o Options) *Recorder {
	if o.Sample <= 0 {
		o.Sample = DefaultSample
	}
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = DefaultSlowThreshold
	}
	if o.Ring <= 0 {
		o.Ring = DefaultRingSize
	}
	if o.Slow <= 0 {
		o.Slow = DefaultSlowSize
	}
	r := &Recorder{
		sample: uint64(o.Sample),
		slowNS: int64(o.SlowThreshold),
		ring:   newRing(o.Ring),
		slow:   newRing(o.Slow),
		hists:  make(map[string]*histSet),
		reg:    o.Registry,
	}
	r.pool.New = func() interface{} { return new(Record) }
	// Pre-resolve the known families so the event path never takes the
	// resolution mutex (or touches the guarded map) at all.
	r.evJSON = r.histSet(RouteEvents, TransportJSON)
	r.evWire = r.histSet(RouteEvents, TransportWire)
	return r
}

// histSet resolves (creating on first use) the histogram family for a
// (route, transport) pair.
func (rec *Recorder) histSet(route, transport string) *histSet {
	key := route + "_" + transport
	rec.mu.Lock()
	defer rec.mu.Unlock()
	hs := rec.hists[key]
	if hs == nil {
		hs = &histSet{
			request: rec.reg.Histogram("serve_request_seconds_"+key, LatencyBuckets),
			queue:   rec.reg.Histogram("serve_queue_wait_seconds_"+key, LatencyBuckets),
			batch:   rec.reg.Histogram("serve_batch_wait_seconds_"+key, LatencyBuckets),
			exec:    rec.reg.Histogram("serve_shard_exec_seconds_"+key, LatencyBuckets),
		}
		rec.hists[key] = hs
	}
	return hs
}

// Begin starts tracing one request: a pooled record, reset, with its
// histogram family resolved and the start instant stamped. Safe on a nil
// recorder (returns nil, and every Record method tolerates nil).
func (rec *Recorder) Begin(route, transport string) *Record {
	if rec == nil {
		return nil
	}
	r := rec.pool.Get().(*Record)
	r.reset()
	r.route, r.transport = route, transport
	switch {
	case route == RouteEvents && transport == TransportJSON:
		r.hist = rec.evJSON
	case route == RouteEvents && transport == TransportWire:
		r.hist = rec.evWire
	default:
		r.hist = rec.histSet(route, transport)
	}
	r.start = Nanos()
	return r
}

// Finish completes a record: derives the stage durations, observes the
// RED histograms, and promotes the record — to the slow-log if it erred,
// carried a fault, or crossed the slow threshold; to the main ring if it
// hit the sampling stride; back to the pool otherwise. After Finish the
// caller must not touch the record (enforced by the goroutineown check
// through the handoff annotation). Safe on nil recorder or record.
//
//predlint:handoff
func (rec *Recorder) Finish(r *Record, status int) {
	if rec == nil || r == nil {
		return
	}
	r.status = status
	r.totalNS = Nanos() - r.start
	if first := r.firstExec.Load(); first > 0 && r.enqueue > 0 && first > r.enqueue {
		r.queueNS = first - r.enqueue
	}
	r.seq = rec.seq.Add(1)
	if hs := r.hist; hs != nil {
		hs.request.Observe(float64(r.totalNS) / 1e9)
		hs.queue.Observe(float64(r.queueNS) / 1e9)
		hs.batch.Observe(float64(r.batchNS.Load()) / 1e9)
		hs.exec.Observe(float64(r.execNS.Load()) / 1e9)
	}
	switch {
	case status >= 400 || r.fault.Load() != 0 || r.totalNS >= rec.slowNS:
		rec.recycle(rec.slow.put(r))
	case r.seq%rec.sample == 0:
		rec.recycle(rec.ring.put(r))
	default:
		rec.pool.Put(r)
	}
}

// recycle returns a displaced record to the pool.
//
//predlint:handoff
func (rec *Recorder) recycle(r *Record) {
	if r != nil {
		rec.pool.Put(r)
	}
}

// Seen returns the number of finished (traced) requests so far.
func (rec *Recorder) Seen() uint64 {
	if rec == nil {
		return 0
	}
	return rec.seq.Load()
}

// Capture kinds.
const (
	KindRequests = "requests"
	KindSlow     = "slow"
)

// Entry is one captured request in wire (JSON) form. Durations are
// nanoseconds; see the package comment for the stage semantics.
type Entry struct {
	Seq       uint64   `json:"seq"`
	ID        string   `json:"id,omitempty"`
	Route     string   `json:"route"`
	Transport string   `json:"transport"`
	Session   string   `json:"session,omitempty"`
	Status    int      `json:"status"`
	Events    int      `json:"events"`
	Batches   int64    `json:"batches"`
	BytesIn   int      `json:"bytes_in"`
	BytesOut  int      `json:"bytes_out"`
	Replay    bool     `json:"replay,omitempty"`
	Faults    []string `json:"faults,omitempty"`
	TotalNS   int64    `json:"total_ns"`
	DecodeNS  int64    `json:"decode_ns"`
	QueueNS   int64    `json:"queue_ns"`
	BatchNS   int64    `json:"batch_ns"`
	ExecNS    int64    `json:"exec_ns"`
	EncodeNS  int64    `json:"encode_ns"`
}

// Capture is the /v1/debug/{requests,slow} response document.
type Capture struct {
	Kind     string  `json:"kind"`
	Sample   int     `json:"sample"`
	SlowNS   int64   `json:"slow_threshold_ns"`
	Seen     uint64  `json:"requests_seen"`
	Requests []Entry `json:"requests"`
}

// Capture drains the named ring into a deterministic document: entries
// sorted by finish sequence (ascending — oldest first). The read is
// destructive: drained records return to the pool, so a second capture
// reports only requests finished since. Safe on a nil recorder.
func (rec *Recorder) Capture(kind string) Capture {
	c := Capture{Kind: kind, Requests: []Entry{}}
	if rec == nil {
		return c
	}
	c.Sample = int(rec.sample)
	c.SlowNS = rec.slowNS
	c.Seen = rec.seq.Load()
	g := rec.ring
	if kind == KindSlow {
		g = rec.slow
	}
	recs := g.drain()
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	for _, r := range recs {
		c.Requests = append(c.Requests, Entry{
			Seq:       r.seq,
			ID:        r.id,
			Route:     r.route,
			Transport: r.transport,
			Session:   r.session,
			Status:    r.status,
			Events:    r.events,
			Batches:   r.batches.Load(),
			BytesIn:   r.bytesIn,
			BytesOut:  r.bytesOut,
			Replay:    r.replay,
			Faults:    faultNames(r.fault.Load()),
			TotalNS:   r.totalNS,
			DecodeNS:  r.decodeNS,
			QueueNS:   r.queueNS,
			BatchNS:   r.batchNS.Load(),
			ExecNS:    r.execNS.Load(),
			EncodeNS:  r.encodeNS,
		})
		rec.pool.Put(r)
	}
	return c
}
