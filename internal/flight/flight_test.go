package flight

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"

	"cohpredict/internal/obs"
)

func TestNanosMonotonic(t *testing.T) {
	a := Nanos()
	b := Nanos()
	if a < 0 || b < a {
		t.Fatalf("Nanos not monotonic: %d then %d", a, b)
	}
}

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	r := rec.Begin(RouteEvents, TransportJSON)
	if r != nil {
		t.Fatalf("nil recorder Begin = %v, want nil", r)
	}
	// Every Record method must tolerate nil.
	r.SetID("x")
	r.SetSession("s")
	r.SetEvents(1)
	r.SetBytesIn(2)
	r.SetBytesOut(3)
	r.AddDecode(4)
	r.AddEncode(5)
	r.SetEnqueue(6)
	r.MarkReplay()
	r.MarkFault(FaultDrop)
	r.NoteBatch(1, 2, 3, 4)
	if r.ID() != "" {
		t.Fatalf("nil record ID = %q, want empty", r.ID())
	}
	rec.Finish(r, 200)
	if rec.Seen() != 0 {
		t.Fatalf("nil recorder Seen = %d", rec.Seen())
	}
	c := rec.Capture(KindRequests)
	if len(c.Requests) != 0 || c.Requests == nil {
		t.Fatalf("nil recorder capture = %+v, want empty non-nil slice", c)
	}
	// Finish on a live recorder with a nil record is also a no-op.
	live := New(Options{})
	live.Finish(nil, 200)
	if live.Seen() != 0 {
		t.Fatalf("Finish(nil) counted: Seen=%d", live.Seen())
	}
}

func TestDefaults(t *testing.T) {
	rec := New(Options{})
	if rec.sample != DefaultSample {
		t.Fatalf("sample = %d, want %d", rec.sample, DefaultSample)
	}
	if rec.slowNS != int64(DefaultSlowThreshold) {
		t.Fatalf("slowNS = %d, want %d", rec.slowNS, int64(DefaultSlowThreshold))
	}
	if len(rec.ring.slots) != DefaultRingSize || len(rec.slow.slots) != DefaultSlowSize {
		t.Fatalf("ring sizes = %d/%d, want %d/%d",
			len(rec.ring.slots), len(rec.slow.slots), DefaultRingSize, DefaultSlowSize)
	}
}

func TestLifecycleAndCapture(t *testing.T) {
	reg := obs.New()
	rec := New(Options{Registry: reg, Sample: 1, SlowThreshold: time.Hour})
	r := rec.Begin(RouteEvents, TransportWire)
	if r == nil {
		t.Fatal("Begin returned nil on live recorder")
	}
	r.SetID("req-1")
	r.SetSession("sess-9")
	r.SetEvents(128)
	r.SetBytesIn(4096)
	r.SetBytesOut(512)
	r.AddDecode(1000)
	r.AddDecode(500)
	r.AddEncode(2000)
	r.SetEnqueue(r.start + 10)
	r.NoteBatch(7, r.start+100, 40, 60)
	rec.Finish(r, 200)

	if rec.Seen() != 1 {
		t.Fatalf("Seen = %d, want 1", rec.Seen())
	}
	c := rec.Capture(KindRequests)
	if c.Kind != KindRequests || c.Sample != 1 || c.Seen != 1 {
		t.Fatalf("capture header = %+v", c)
	}
	if len(c.Requests) != 1 {
		t.Fatalf("captured %d requests, want 1", len(c.Requests))
	}
	e := c.Requests[0]
	if e.ID != "req-1" || e.Session != "sess-9" || e.Route != RouteEvents ||
		e.Transport != TransportWire || e.Status != 200 || e.Events != 128 ||
		e.BytesIn != 4096 || e.BytesOut != 512 || e.Batches != 1 ||
		e.DecodeNS != 1500 || e.EncodeNS != 2000 || e.BatchNS != 40 || e.ExecNS != 60 {
		t.Fatalf("entry = %+v", e)
	}
	if e.QueueNS != 90 { // firstExec(start+100) - enqueue(start+10)
		t.Fatalf("queue_ns = %d, want 90", e.QueueNS)
	}
	if e.TotalNS <= 0 {
		t.Fatalf("total_ns = %d, want > 0", e.TotalNS)
	}
	if e.Replay || len(e.Faults) != 0 {
		t.Fatalf("unexpected replay/faults in %+v", e)
	}
	// Histograms observed once each.
	snap := reg.Snapshot()
	for _, name := range []string{
		"serve_request_seconds_events_wire",
		"serve_queue_wait_seconds_events_wire",
		"serve_batch_wait_seconds_events_wire",
		"serve_shard_exec_seconds_events_wire",
	} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count != 1 {
			t.Fatalf("histogram %s: ok=%v count=%d, want 1 observation", name, ok, h.Count)
		}
	}
	// Destructive read: second capture is empty.
	if c2 := rec.Capture(KindRequests); len(c2.Requests) != 0 {
		t.Fatalf("second capture returned %d requests, want 0", len(c2.Requests))
	}
}

func TestSamplingStride(t *testing.T) {
	rec := New(Options{Sample: 4, SlowThreshold: time.Hour})
	for i := 0; i < 8; i++ {
		rec.Finish(rec.Begin(RouteEvents, TransportJSON), 200)
	}
	c := rec.Capture(KindRequests)
	if len(c.Requests) != 2 {
		t.Fatalf("sample=4 over 8 requests captured %d, want 2", len(c.Requests))
	}
	for _, e := range c.Requests {
		if e.Seq%4 != 0 {
			t.Fatalf("sampled seq %d not on stride 4", e.Seq)
		}
	}
	if s := rec.Capture(KindSlow); len(s.Requests) != 0 {
		t.Fatalf("slow ring has %d entries, want 0", len(s.Requests))
	}
}

func TestSlowPromotion(t *testing.T) {
	cases := []struct {
		name   string
		status int
		stamp  func(r *Record)
		faults []string
	}{
		{"error-status", 500, func(r *Record) {}, nil},
		{"fault-bit", 200, func(r *Record) { r.MarkFault(FaultDelay) }, []string{"delay"}},
		{"over-threshold", 200, func(r *Record) { r.start -= int64(time.Hour) }, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Sample huge: nothing reaches the main ring by sampling, so
			// anything captured got there by promotion.
			rec := New(Options{Sample: 1 << 30, SlowThreshold: time.Hour})
			r := rec.Begin(RouteEvents, TransportJSON)
			tc.stamp(r)
			rec.Finish(r, tc.status)
			slow := rec.Capture(KindSlow)
			if len(slow.Requests) != 1 {
				t.Fatalf("slow ring has %d entries, want 1", len(slow.Requests))
			}
			if got := slow.Requests[0].Faults; !reflect.DeepEqual(got, tc.faults) {
				t.Fatalf("faults = %v, want %v", got, tc.faults)
			}
			if main := rec.Capture(KindRequests); len(main.Requests) != 0 {
				t.Fatalf("promoted request also hit main ring (%d entries)", len(main.Requests))
			}
		})
	}
}

func TestReplayFlagSurvivesCapture(t *testing.T) {
	rec := New(Options{Sample: 1, SlowThreshold: time.Hour})
	r := rec.Begin(RouteEvents, TransportJSON)
	r.MarkReplay()
	rec.Finish(r, 200)
	c := rec.Capture(KindRequests)
	if len(c.Requests) != 1 || !c.Requests[0].Replay {
		t.Fatalf("capture = %+v, want one replay entry", c.Requests)
	}
}

func TestNoteBatchDedupAndFirstExec(t *testing.T) {
	r := new(Record)
	// Two ops of the same request in one micro-batch: counted once.
	r.NoteBatch(10, 500, 30, 70)
	r.NoteBatch(10, 500, 30, 70)
	if got := r.batches.Load(); got != 1 {
		t.Fatalf("batches after dup = %d, want 1", got)
	}
	if r.batchNS.Load() != 30 || r.execNS.Load() != 70 {
		t.Fatalf("batch/exec after dup = %d/%d, want 30/70", r.batchNS.Load(), r.execNS.Load())
	}
	// A different batch accumulates; an earlier execStart wins firstExec.
	r.NoteBatch(11, 400, 5, 25)
	if got := r.batches.Load(); got != 2 {
		t.Fatalf("batches = %d, want 2", got)
	}
	if r.batchNS.Load() != 35 || r.execNS.Load() != 95 {
		t.Fatalf("batch/exec = %d/%d, want 35/95", r.batchNS.Load(), r.execNS.Load())
	}
	if got := r.firstExec.Load(); got != 400 {
		t.Fatalf("firstExec = %d, want 400 (earliest)", got)
	}
	// A later execStart does not move firstExec back.
	r.NoteBatch(12, 900, 1, 1)
	if got := r.firstExec.Load(); got != 400 {
		t.Fatalf("firstExec after later batch = %d, want 400", got)
	}
}

func TestMarkFaultAccumulates(t *testing.T) {
	r := new(Record)
	r.MarkFault(FaultDrop)
	r.MarkFault(FaultReset)
	r.MarkFault(FaultDrop) // idempotent re-mark
	if got := r.fault.Load(); got != FaultDrop|FaultReset {
		t.Fatalf("fault bits = %#x, want %#x", got, FaultDrop|FaultReset)
	}
}

func TestFaultNames(t *testing.T) {
	if got := faultNames(0); got != nil {
		t.Fatalf("faultNames(0) = %v, want nil", got)
	}
	all := FaultDrop | FaultDelay | FaultError | FaultReset
	want := []string{"drop", "delay", "error", "reset"}
	if got := faultNames(all); !reflect.DeepEqual(got, want) {
		t.Fatalf("faultNames(all) = %v, want %v", got, want)
	}
}

func TestRingDisplacement(t *testing.T) {
	rec := New(Options{Sample: 1, SlowThreshold: time.Hour, Ring: 2, Slow: 2})
	for i := 0; i < 5; i++ {
		rec.Finish(rec.Begin(RouteEvents, TransportJSON), 200)
	}
	c := rec.Capture(KindRequests)
	if len(c.Requests) != 2 {
		t.Fatalf("ring of 2 after 5 finishes holds %d, want 2", len(c.Requests))
	}
	// Oldest-first ordering of the survivors (the last two finished).
	if c.Requests[0].Seq != 4 || c.Requests[1].Seq != 5 {
		t.Fatalf("captured seqs %d,%d; want 4,5", c.Requests[0].Seq, c.Requests[1].Seq)
	}
}

func TestCaptureJSONShape(t *testing.T) {
	rec := New(Options{Sample: 1, SlowThreshold: time.Hour})
	r := rec.Begin(RouteEvents, TransportJSON)
	r.SetID("abc")
	rec.Finish(r, 200)
	b, err := json.Marshal(rec.Capture(KindRequests))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, key := range []string{"kind", "sample", "slow_threshold_ns", "requests_seen", "requests"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("capture JSON missing %q: %s", key, b)
		}
	}
}

func TestRecordReuseIsClean(t *testing.T) {
	rec := New(Options{Sample: 1, SlowThreshold: time.Hour, Ring: 1})
	r := rec.Begin(RouteEvents, TransportWire)
	r.SetID("dirty")
	r.SetEvents(99)
	r.MarkFault(FaultDrop)
	r.MarkReplay()
	rec.Finish(r, 503) // → slow ring
	rec.Capture(KindSlow)

	// The pooled record must come back blank.
	r2 := rec.Begin(RouteEvents, TransportJSON)
	if r2.ID() != "" || r2.events != 0 || r2.fault.Load() != 0 || r2.replay {
		t.Fatalf("reused record not reset: %+v", r2)
	}
	rec.Finish(r2, 200)
}

func TestHistSetLazyResolution(t *testing.T) {
	reg := obs.New()
	rec := New(Options{Registry: reg, Sample: 1, SlowThreshold: time.Hour})
	r := rec.Begin("snapshot", TransportJSON) // unknown family: resolved lazily
	rec.Finish(r, 200)
	snap := reg.Snapshot()
	if h, ok := snap.Histograms["serve_request_seconds_snapshot_json"]; !ok || h.Count != 1 {
		t.Fatalf("lazy family not observed: ok=%v", ok)
	}
}

func TestConcurrentStampingAndCapture(t *testing.T) {
	rec := New(Options{Sample: 2, SlowThreshold: time.Hour, Ring: 8, Slow: 8})
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r := rec.Begin(RouteEvents, TransportWire)
				r.SetEvents(1)
				r.SetEnqueue(Nanos())
				// Concurrent shard-side stamping on the same record.
				var sg sync.WaitGroup
				for s := 0; s < 3; s++ {
					sg.Add(1)
					go func(s int) {
						defer sg.Done()
						r.NoteBatch(uint64(s+1), Nanos(), 1, 1)
						r.MarkFault(FaultDelay)
					}(s)
				}
				sg.Wait()
				rec.Finish(r, 200)
			}
		}(w)
	}
	// A concurrent capturer drains while writers publish.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			rec.Capture(KindRequests)
			rec.Capture(KindSlow)
		}
	}()
	wg.Wait()
	<-done
	if got := rec.Seen(); got != workers*perWorker {
		t.Fatalf("Seen = %d, want %d", got, workers*perWorker)
	}
}
