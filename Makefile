# Developer entry points. `make check` is the gate every change must pass:
# vet, the predlint static-analysis pass, and the full test suite under the
# race detector (the parallel sweep engine and suite generation run
# concurrent paths in ordinary tests).

GO ?= go

.PHONY: check vet lint lint-self lint-timed test race race-hammer bench build obs-demo serve-demo chaos-demo trace-demo load-demo cluster-demo fuzz-smoke cover bench-ledger throughput-smoke

check: vet lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: determinism, hot-path discipline, obs
# nil-safety, panic-free libraries, exhaustive enum switches, and the
# concurrency contracts (guardedby, atomiconly, goroutineown, staleignore).
# Exits non-zero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/predlint

# The analyzer analyzing itself: the full check set over the module, with
# findings filtered to internal/lint. predlint must hold its own source to
# the contracts it enforces (TestSelfClean is the test-suite twin).
lint-self:
	$(GO) run ./cmd/predlint -only internal/lint

# Latency guard for the full lint pass: build the binary, then the
# analysis itself (load + typecheck + all nine checks over the module)
# must finish within 30 seconds or the target fails. Keeps the pre-commit
# gate cheap enough that nobody is tempted to skip it.
lint-timed:
	$(GO) build -o /tmp/predlint-timed ./cmd/predlint
	timeout 30 /tmp/predlint-timed -root .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The chaos-equivalence hammer under the race detector: injected drops,
# delays, 500s, resets, and a mid-stream kill+restore, with every shared
# structure the new guardedby/atomiconly annotations claim to protect
# exercised concurrently. Static checking proves lock discipline on every
# path; this proves the locks are the *right* locks at runtime. -short
# trims the scheme matrix to keep the CI step tight.
race-hammer:
	$(GO) test -race -short -count=1 ./internal/serve -run 'TestChaos'

# Benchmark the sweep engine only (serial baseline + parallel family).
bench:
	$(GO) test -run='^$$' -bench='Sweep' -benchmem .

# Full benchmark suite: every table, figure, ablation and hot path.
bench-all:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Quick observability demo: run the sweep probe at test scale, write a
# metrics snapshot to obs.json and print the span tree (stderr).
obs-demo:
	$(GO) run ./cmd/predsim -scale test -quick -obs obs.json

# Prediction-service demo: start predserve on a loopback port, drive every
# endpoint with a scripted session, print each exchange, drain.
serve-demo:
	$(GO) run ./cmd/predserve -demo

# Chaos demo: stream a trace at a fault-injected server (drops, delays,
# 500s, connection resets), kill it mid-stream, restore the checkpoint in
# a second server at a different shard count, and verify the served
# predictions byte-identical against the fault-free offline engine.
chaos-demo:
	$(GO) run ./cmd/predserve -chaos-demo

# Flight-recorder demo: boot an in-process server with seeded chaos
# faults, stream batches at it, fetch /v1/debug/{requests,slow}, and
# render the per-stage waterfall — every injected fault correlated to a
# client request ID, or the demo exits non-zero.
trace-demo:
	$(GO) run ./cmd/predtrace -demo

# Load-generator demo: boot an in-process server, drive it with a seeded
# 2-second open-loop poisson run over the binary transport, write the
# predload-slo/v1 ledger, and re-validate it through benchledger.
load-demo:
	$(GO) run ./cmd/predload -demo -out BENCH_predload.json
	$(GO) run ./cmd/benchledger -check BENCH_predload.json

# Cluster demo: the self-contained predroute walkthrough (3 backends +
# standby in-process; live migration under load, a mid-stream kill with
# standby failover, served predictions verified byte-identical against
# the fault-free offline engine), then the capacity-planning mode over
# an in-process cluster, its predload-cluster/v1 ledger re-validated.
cluster-demo:
	$(GO) run ./cmd/predroute -demo
	$(GO) run ./cmd/predload -demo -cluster -out BENCH_cluster.json
	$(GO) run ./cmd/benchledger -check BENCH_cluster.json

# Short native-fuzzing pass over the serialized attack surfaces: the JSON
# event decoder, the COHWIRE1 batch/reply decoders (plus the JSON↔binary
# cross-equivalence property), the shard router's co-location invariants,
# the engine-checkpoint wire decoder, the COHTRACE1 trace decoders, and
# the cluster control-plane codecs.
fuzz-smoke:
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzDecodeEventRequest -fuzztime=10s
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzDecodeWireBatch -fuzztime=10s
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzDecodeWireReply -fuzztime=10s
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzWireJSONCross -fuzztime=10s
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzRouteKey -fuzztime=10s
	$(GO) test ./internal/eval -run='^$$' -fuzz=FuzzDecodeSnapshot -fuzztime=10s
	$(GO) test ./internal/traffic -run='^$$' -fuzz=FuzzDecodeTraceFile -fuzztime=10s
	$(GO) test ./internal/traffic -run='^$$' -fuzz=FuzzDecodeTraceRecord -fuzztime=10s
	$(GO) test ./internal/cluster -run='^$$' -fuzz=FuzzDecodeMigrateRequest -fuzztime=10s
	$(GO) test ./internal/cluster -run='^$$' -fuzz=FuzzDecodeClusterStatus -fuzztime=10s

# Regenerate the committed benchmark ledger: the transport comparison
# (codec-level halves from the repo root, end-to-end HTTP pair from
# internal/serve, the routed counterpart from internal/cluster whose
# delta against BenchmarkServeWire/http is the router's overhead)
# distilled into BENCH_predserve.json, then re-validated.
bench-ledger:
	$(GO) test -run='^$$' -bench='BenchmarkServe(JSON|Wire)' -benchmem . ./internal/serve ./internal/cluster \
		| $(GO) run ./cmd/benchledger -out BENCH_predserve.json
	$(GO) run ./cmd/benchledger -check BENCH_predserve.json

# Throughput floors, explicitly non-short: JSON must hold 100k events/sec
# end to end, COHWIRE1 must hold 500k (CI runs this as a smoke step).
throughput-smoke:
	$(GO) test ./internal/serve -run='TestThroughputFloor' -count=1 -v

# Coverage ratchet: per-package statement-coverage floors sit a few points
# below measured coverage, so a change that lands a chunk of untested code
# in the serving/eval/fault/client layers fails the build.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./internal/serve ./internal/eval ./internal/fault ./internal/client ./internal/flight ./internal/lint ./internal/traffic ./internal/cluster ./cmd/predtrace
	$(GO) run ./cmd/covergate -profile cover.out \
		internal/serve=85 internal/eval=88 internal/fault=95 internal/client=72 \
		internal/flight=85 internal/lint=85 internal/traffic=85 internal/cluster=85 cmd/predtrace=80 \
		internal/serve/wire.go=85 \
		internal/lint/check_guardedby.go=85 internal/lint/check_atomiconly.go=85 \
		internal/lint/check_goroutineown.go=90 internal/lint/check_staleignore.go=90
