# Developer entry points. `make check` is the gate every change must pass:
# vet, the predlint static-analysis pass, and the full test suite under the
# race detector (the parallel sweep engine and suite generation run
# concurrent paths in ordinary tests).

GO ?= go

.PHONY: check vet lint test race bench build obs-demo serve-demo fuzz-smoke

check: vet lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: determinism, hot-path discipline, obs
# nil-safety, panic-free libraries, exhaustive enum switches. Exits
# non-zero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/predlint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark the sweep engine only (serial baseline + parallel family).
bench:
	$(GO) test -run='^$$' -bench='Sweep' -benchmem .

# Full benchmark suite: every table, figure, ablation and hot path.
bench-all:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Quick observability demo: run the sweep probe at test scale, write a
# metrics snapshot to obs.json and print the span tree (stderr).
obs-demo:
	$(GO) run ./cmd/predsim -scale test -quick -obs obs.json

# Prediction-service demo: start predserve on a loopback port, drive every
# endpoint with a scripted session, print each exchange, drain.
serve-demo:
	$(GO) run ./cmd/predserve -demo

# Short native-fuzzing pass over the serving layer's two attack surfaces:
# the JSON event decoder and the shard router's co-location invariants.
fuzz-smoke:
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzDecodeEventRequest -fuzztime=10s
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzRouteKey -fuzztime=10s
