module cohpredict

go 1.22
